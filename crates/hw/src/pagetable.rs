//! The overflow-free, flat hash page table (paper §4.2).
//!
//! One single table holds the PTEs of **all** processes; its size is fixed by
//! the MN's physical memory (pages × slack), never by client count — this is
//! how Clio meets requirement R2. Each bucket has `K` slots and is fetched in
//! one DRAM access, so translation latency is bounded by exactly one DRAM
//! round trip on a TLB miss.
//!
//! Overflow never happens at **access** time because the slow-path VA
//! allocator refuses to hand out ranges whose pages would overflow a bucket
//! (see `clio_mn::valloc`); [`HashPageTable::can_insert_all`] is the check it
//! uses.

use clio_proto::{Perm, Pid};

use crate::hash::bucket_of;

/// One page-table entry.
///
/// `valid == false` means the VA range is allocated but no physical page has
/// been assigned yet — touching it triggers the hardware page-fault handler
/// (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Owning process (protection domain).
    pub pid: Pid,
    /// Virtual page number.
    pub vpn: u64,
    /// Physical page number (meaningful only when `valid`).
    pub ppn: u64,
    /// Access permissions for the page.
    pub perm: Perm,
    /// Whether a physical page is attached.
    pub valid: bool,
}

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageTableError {
    /// The target bucket's `K` slots are all occupied. The VA allocator
    /// treats this as "pick different VAs and retry".
    BucketOverflow {
        /// The bucket that was full.
        bucket: usize,
    },
    /// The `(pid, vpn)` pair is already present.
    Duplicate,
}

impl std::fmt::Display for PageTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageTableError::BucketOverflow { bucket } => {
                write!(f, "hash bucket {bucket} overflow")
            }
            PageTableError::Duplicate => write!(f, "duplicate page-table entry"),
        }
    }
}

impl std::error::Error for PageTableError {}

/// The flat hash page table.
#[derive(Debug, Clone)]
pub struct HashPageTable {
    buckets: Vec<Vec<Pte>>, // each inner Vec holds at most `slots_per_bucket`
    slots_per_bucket: usize,
    occupied: usize,
}

impl HashPageTable {
    /// Creates a table with `buckets` buckets of `slots_per_bucket` slots.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(buckets: usize, slots_per_bucket: usize) -> Self {
        assert!(buckets > 0 && slots_per_bucket > 0, "degenerate page table");
        HashPageTable { buckets: vec![Vec::new(); buckets], slots_per_bucket, occupied: 0 }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Slots per bucket (K).
    pub fn slots_per_bucket(&self) -> usize {
        self.slots_per_bucket
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.buckets.len() * self.slots_per_bucket
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The bucket index `(pid, vpn)` maps to.
    pub fn bucket_index(&self, pid: Pid, vpn: u64) -> usize {
        bucket_of(pid, vpn, self.buckets.len())
    }

    /// Looks up the PTE for `(pid, vpn)`. One DRAM access in hardware.
    pub fn lookup(&self, pid: Pid, vpn: u64) -> Option<&Pte> {
        self.buckets[self.bucket_index(pid, vpn)].iter().find(|p| p.pid == pid && p.vpn == vpn)
    }

    /// Mutable lookup (fast path marks entries valid on page faults).
    pub fn lookup_mut(&mut self, pid: Pid, vpn: u64) -> Option<&mut Pte> {
        let b = self.bucket_index(pid, vpn);
        self.buckets[b].iter_mut().find(|p| p.pid == pid && p.vpn == vpn)
    }

    /// Inserts a new PTE.
    ///
    /// # Errors
    ///
    /// [`PageTableError::BucketOverflow`] if the bucket is full,
    /// [`PageTableError::Duplicate`] if the mapping already exists.
    pub fn insert(&mut self, pte: Pte) -> Result<(), PageTableError> {
        let b = self.bucket_index(pte.pid, pte.vpn);
        let bucket = &mut self.buckets[b];
        if bucket.iter().any(|p| p.pid == pte.pid && p.vpn == pte.vpn) {
            return Err(PageTableError::Duplicate);
        }
        if bucket.len() >= self.slots_per_bucket {
            return Err(PageTableError::BucketOverflow { bucket: b });
        }
        bucket.push(pte);
        self.occupied += 1;
        Ok(())
    }

    /// Removes and returns the PTE for `(pid, vpn)`.
    pub fn remove(&mut self, pid: Pid, vpn: u64) -> Option<Pte> {
        let b = self.bucket_index(pid, vpn);
        let bucket = &mut self.buckets[b];
        let idx = bucket.iter().position(|p| p.pid == pid && p.vpn == vpn)?;
        self.occupied -= 1;
        Some(bucket.swap_remove(idx))
    }

    /// The allocation-time overflow check (§4.2): would inserting all of
    /// `pages` (in addition to current contents) overflow any bucket?
    ///
    /// Counts per-bucket demand across the whole candidate set, so a range
    /// whose own pages collide with each other is also rejected.
    pub fn can_insert_all<I>(&self, pages: I) -> bool
    where
        I: IntoIterator<Item = (Pid, u64)>,
    {
        use std::collections::HashMap;
        let mut demand: HashMap<usize, usize> = HashMap::new();
        for (pid, vpn) in pages {
            if self.lookup(pid, vpn).is_some() {
                return false; // already mapped: allocator must not reuse it
            }
            *demand.entry(self.bucket_index(pid, vpn)).or_insert(0) += 1;
        }
        demand.into_iter().all(|(b, extra)| self.buckets[b].len() + extra <= self.slots_per_bucket)
    }

    /// Iterates all entries of a process (used by `DestroyAs` and
    /// migration).
    pub fn iter_pid(&self, pid: Pid) -> impl Iterator<Item = &Pte> + '_ {
        self.buckets.iter().flatten().filter(move |p| p.pid == pid)
    }

    /// Iterates every stored entry.
    pub fn iter(&self) -> impl Iterator<Item = &Pte> + '_ {
        self.buckets.iter().flatten()
    }

    /// Fraction of slots occupied.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(pid: u64, vpn: u64) -> Pte {
        Pte { pid: Pid(pid), vpn, ppn: 0, perm: Perm::RW, valid: false }
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut pt = HashPageTable::new(64, 4);
        for vpn in 0..50 {
            pt.insert(pte(1, vpn)).expect("insert");
        }
        assert_eq!(pt.len(), 50);
        for vpn in 0..50 {
            let e = pt.lookup(Pid(1), vpn).expect("present");
            assert_eq!(e.vpn, vpn);
        }
        assert!(pt.lookup(Pid(2), 0).is_none());
        assert_eq!(pt.remove(Pid(1), 25).map(|e| e.vpn), Some(25));
        assert!(pt.lookup(Pid(1), 25).is_none());
        assert_eq!(pt.len(), 49);
        assert!(pt.remove(Pid(1), 25).is_none());
    }

    #[test]
    fn duplicate_rejected() {
        let mut pt = HashPageTable::new(8, 4);
        pt.insert(pte(1, 1)).unwrap();
        assert_eq!(pt.insert(pte(1, 1)), Err(PageTableError::Duplicate));
    }

    #[test]
    fn bucket_overflow_reported() {
        // Single bucket: everything collides by construction.
        let mut pt = HashPageTable::new(1, 2);
        pt.insert(pte(1, 0)).unwrap();
        pt.insert(pte(1, 1)).unwrap();
        assert!(matches!(pt.insert(pte(1, 2)), Err(PageTableError::BucketOverflow { bucket: 0 })));
        assert_eq!(pt.len(), 2);
    }

    #[test]
    fn can_insert_all_counts_internal_collisions() {
        let pt = HashPageTable::new(1, 2);
        assert!(pt.can_insert_all([(Pid(1), 0), (Pid(1), 1)]));
        assert!(!pt.can_insert_all([(Pid(1), 0), (Pid(1), 1), (Pid(1), 2)]));
    }

    #[test]
    fn can_insert_all_rejects_existing_mappings() {
        let mut pt = HashPageTable::new(16, 4);
        pt.insert(pte(1, 7)).unwrap();
        assert!(!pt.can_insert_all([(Pid(1), 7)]));
        assert!(pt.can_insert_all([(Pid(2), 7)]), "other pid is fine");
    }

    #[test]
    fn per_pid_iteration_and_isolation() {
        let mut pt = HashPageTable::new(64, 4);
        for vpn in 0..10 {
            pt.insert(pte(1, vpn)).unwrap();
            pt.insert(pte(2, vpn)).unwrap();
        }
        assert_eq!(pt.iter_pid(Pid(1)).count(), 10);
        assert_eq!(pt.iter_pid(Pid(2)).count(), 10);
        assert_eq!(pt.iter().count(), 20);
        // Same VPN under different PIDs are distinct entries.
        assert!(pt.lookup(Pid(1), 3).is_some());
        assert!(pt.lookup(Pid(2), 3).is_some());
    }

    #[test]
    fn lookup_mut_allows_fault_fill() {
        let mut pt = HashPageTable::new(16, 4);
        pt.insert(pte(1, 5)).unwrap();
        {
            let e = pt.lookup_mut(Pid(1), 5).unwrap();
            e.valid = true;
            e.ppn = 99;
        }
        let e = pt.lookup(Pid(1), 5).unwrap();
        assert!(e.valid);
        assert_eq!(e.ppn, 99);
    }

    #[test]
    fn capacity_is_fixed_and_load_factor_tracks() {
        let mut pt = HashPageTable::new(128, 4);
        assert_eq!(pt.capacity(), 512);
        assert!(pt.is_empty());
        for vpn in 0..256 {
            // Spread across pids to avoid unlucky collisions mattering.
            let _ = pt.insert(pte(vpn % 7, vpn));
        }
        assert!(pt.load_factor() > 0.4 && pt.load_factor() <= 0.5);
    }
}
