//! The retry-dedup buffer (paper §4.5, technique T4).
//!
//! A retried request must not execute twice: a slow (not lost) original could
//! arrive after another client's write and a blind re-execution of the retry
//! would undo it. The MN therefore remembers the request ids of recently
//! executed non-idempotent operations (writes and atomics) plus the results
//! of atomics, for long enough to cover the retry window.
//!
//! The buffer is sized `3 × TIMEOUT × bandwidth` (30 KB in the paper's
//! setting): it can "remember" an operation long enough for two retries, and
//! crucially its size depends only on link bandwidth and the timeout — not
//! on the number of clients — preserving MN statelessness in the scalability
//! sense.

use std::collections::{HashMap, VecDeque};

use clio_proto::ReqId;

/// What the MN remembers about an executed non-idempotent request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupRecord {
    /// A write: the retry is acknowledged without re-writing.
    Write,
    /// An atomic: the cached old-value is re-sent as the retry's response.
    Atomic {
        /// The value the original execution returned.
        old: u64,
    },
}

/// FIFO dedup buffer with O(1) lookup.
#[derive(Debug)]
pub struct DedupBuffer {
    order: VecDeque<ReqId>,
    records: HashMap<ReqId, DedupRecord>,
    capacity_entries: usize,
    hits: u64,
}

impl DedupBuffer {
    /// A buffer of `capacity_bytes / entry_bytes` entries (the paper's
    /// sizing rule).
    ///
    /// # Panics
    ///
    /// Panics if the resulting capacity is zero.
    pub fn with_byte_budget(capacity_bytes: usize, entry_bytes: usize) -> Self {
        assert!(entry_bytes > 0, "entry size must be non-zero");
        Self::new(capacity_bytes / entry_bytes)
    }

    /// A buffer of exactly `capacity_entries` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_entries == 0`.
    pub fn new(capacity_entries: usize) -> Self {
        assert!(capacity_entries > 0, "dedup buffer must have capacity");
        DedupBuffer {
            order: VecDeque::with_capacity(capacity_entries),
            records: HashMap::with_capacity(capacity_entries),
            capacity_entries,
            hits: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity_entries
    }

    /// Entries currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Times a retry matched a remembered execution.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Records that `req_id` (a write or atomic) has executed, evicting the
    /// oldest record if full. Re-recording an id refreshes its record but
    /// not its eviction position (ids are unique in practice).
    pub fn record(&mut self, req_id: ReqId, record: DedupRecord) {
        if self.records.insert(req_id, record).is_some() {
            return;
        }
        self.order.push_back(req_id);
        if self.order.len() > self.capacity_entries {
            let evicted = self.order.pop_front().expect("non-empty");
            self.records.remove(&evicted);
        }
    }

    /// Forgets every remembered execution (a board power-cycle: the dedup
    /// buffer is volatile SRAM and does not survive a crash). The hit
    /// counter is preserved — it is harness observability, not board state.
    pub fn clear(&mut self) {
        self.order.clear();
        self.records.clear();
    }

    /// Checks whether the original of a retry already executed; counts a hit
    /// if so. The fast path calls this with the retry's `retry_of` id.
    pub fn check(&mut self, original: ReqId) -> Option<DedupRecord> {
        let rec = self.records.get(&original).copied();
        if rec.is_some() {
            self.hits += 1;
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_and_hits() {
        let mut d = DedupBuffer::new(4);
        d.record(ReqId(1), DedupRecord::Write);
        d.record(ReqId(2), DedupRecord::Atomic { old: 7 });
        assert_eq!(d.check(ReqId(1)), Some(DedupRecord::Write));
        assert_eq!(d.check(ReqId(2)), Some(DedupRecord::Atomic { old: 7 }));
        assert_eq!(d.check(ReqId(3)), None);
        assert_eq!(d.hits(), 2);
    }

    #[test]
    fn evicts_fifo_at_capacity() {
        let mut d = DedupBuffer::new(2);
        d.record(ReqId(1), DedupRecord::Write);
        d.record(ReqId(2), DedupRecord::Write);
        d.record(ReqId(3), DedupRecord::Write);
        assert_eq!(d.len(), 2);
        assert_eq!(d.check(ReqId(1)), None, "oldest evicted");
        assert!(d.check(ReqId(2)).is_some());
        assert!(d.check(ReqId(3)).is_some());
    }

    #[test]
    fn byte_budget_matches_paper_sizing() {
        // 30 KB at 32 B/entry = 960 entries (§4.5: 3 × TIMEOUT × bandwidth).
        let d = DedupBuffer::with_byte_budget(30 << 10, 32);
        assert_eq!(d.capacity(), 960);
        assert!(d.is_empty());
    }

    #[test]
    fn clear_forgets_records_keeps_hits() {
        let mut d = DedupBuffer::new(4);
        d.record(ReqId(1), DedupRecord::Write);
        assert!(d.check(ReqId(1)).is_some());
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.check(ReqId(1)), None, "crash forgets executions");
        assert_eq!(d.hits(), 1, "observability counter survives");
        d.record(ReqId(2), DedupRecord::Write);
        assert_eq!(d.len(), 1, "buffer usable after clear");
    }

    #[test]
    fn duplicate_record_refreshes_value() {
        let mut d = DedupBuffer::new(2);
        d.record(ReqId(1), DedupRecord::Atomic { old: 1 });
        d.record(ReqId(1), DedupRecord::Atomic { old: 2 });
        assert_eq!(d.len(), 1);
        assert_eq!(d.check(ReqId(1)), Some(DedupRecord::Atomic { old: 2 }));
    }
}
