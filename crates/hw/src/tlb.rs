//! The on-chip TLB: fixed capacity, content-addressable, LRU replacement
//! (paper §4.2).
//!
//! The TLB is shared by all processes (entries are keyed by `(PID, VPN)`),
//! which is also why the paper's discussion of side channels (§8) calls out
//! TLB sharing. Lookup is O(1); the LRU list is an intrusive doubly-linked
//! list over a slab, so misses and evictions are O(1) too — the model can
//! sustain the millions of lookups the scalability figures need.

use std::collections::HashMap;

use clio_proto::{Perm, Pid};

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Physical page number.
    pub ppn: u64,
    /// Page permissions (checked in the same cycle as the lookup).
    pub perm: Perm,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: (Pid, u64),
    entry: TlbEntry,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// Fixed-capacity LRU TLB.
#[derive(Debug)]
pub struct Tlb {
    map: HashMap<(Pid, u64), usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with room for `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB must have capacity");
        Tlb {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit count since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `(pid, vpn)`, refreshing recency on a hit. Records hit/miss
    /// statistics.
    pub fn lookup(&mut self, pid: Pid, vpn: u64) -> Option<TlbEntry> {
        match self.map.get(&(pid, vpn)).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(self.slab[idx].entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without perturbing recency or statistics.
    pub fn peek(&self, pid: Pid, vpn: u64) -> Option<TlbEntry> {
        self.map.get(&(pid, vpn)).map(|&idx| self.slab[idx].entry)
    }

    /// Inserts (or updates) a translation, evicting the LRU entry when full.
    /// Returns the evicted key, if any.
    pub fn insert(&mut self, pid: Pid, vpn: u64, entry: TlbEntry) -> Option<(Pid, u64)> {
        if let Some(&idx) = self.map.get(&(pid, vpn)) {
            self.slab[idx].entry = entry;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let key = self.slab[lru].key;
            self.map.remove(&key);
            self.free.push(lru);
            evicted = Some(key);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node { key: (pid, vpn), entry, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slab.push(Node { key: (pid, vpn), entry, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert((pid, vpn), idx);
        self.push_front(idx);
        evicted
    }

    /// Drops the translation for `(pid, vpn)` if cached (PTE update/free).
    pub fn invalidate(&mut self, pid: Pid, vpn: u64) -> bool {
        match self.map.remove(&(pid, vpn)) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Drops every translation belonging to `pid` (address-space teardown).
    pub fn invalidate_pid(&mut self, pid: Pid) -> usize {
        let keys: Vec<(Pid, u64)> = self.map.keys().filter(|(p, _)| *p == pid).copied().collect();
        for k in &keys {
            let idx = self.map.remove(k).expect("key just listed");
            self.unlink(idx);
            self.free.push(idx);
        }
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ppn: u64) -> TlbEntry {
        TlbEntry { ppn, perm: Perm::RW }
    }

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4);
        assert!(t.lookup(Pid(1), 10).is_none());
        t.insert(Pid(1), 10, e(5));
        assert_eq!(t.lookup(Pid(1), 10), Some(e(5)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(3);
        t.insert(Pid(1), 1, e(1));
        t.insert(Pid(1), 2, e(2));
        t.insert(Pid(1), 3, e(3));
        // Touch 1 so 2 becomes LRU.
        assert!(t.lookup(Pid(1), 1).is_some());
        let evicted = t.insert(Pid(1), 4, e(4));
        assert_eq!(evicted, Some((Pid(1), 2)));
        assert!(t.peek(Pid(1), 2).is_none());
        assert!(t.peek(Pid(1), 1).is_some());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn update_refreshes_entry_and_recency() {
        let mut t = Tlb::new(2);
        t.insert(Pid(1), 1, e(1));
        t.insert(Pid(1), 2, e(2));
        t.insert(Pid(1), 1, e(99)); // update, now 2 is LRU
        let evicted = t.insert(Pid(1), 3, e(3));
        assert_eq!(evicted, Some((Pid(1), 2)));
        assert_eq!(t.peek(Pid(1), 1), Some(e(99)));
    }

    #[test]
    fn invalidate_single_and_pid() {
        let mut t = Tlb::new(8);
        for vpn in 0..4 {
            t.insert(Pid(1), vpn, e(vpn));
            t.insert(Pid(2), vpn, e(vpn));
        }
        assert!(t.invalidate(Pid(1), 2));
        assert!(!t.invalidate(Pid(1), 2));
        assert_eq!(t.len(), 7);
        assert_eq!(t.invalidate_pid(Pid(2)), 4);
        assert_eq!(t.len(), 3);
        assert!(t.peek(Pid(2), 0).is_none());
        assert!(t.peek(Pid(1), 0).is_some());
    }

    #[test]
    fn reuses_slots_after_invalidate() {
        let mut t = Tlb::new(2);
        t.insert(Pid(1), 1, e(1));
        t.invalidate(Pid(1), 1);
        t.insert(Pid(1), 2, e(2));
        t.insert(Pid(1), 3, e(3));
        assert_eq!(t.len(), 2);
        // Slab did not grow beyond capacity.
        assert!(t.slab.len() <= 2);
    }

    #[test]
    fn capacity_one_works() {
        let mut t = Tlb::new(1);
        t.insert(Pid(1), 1, e(1));
        assert_eq!(t.insert(Pid(1), 2, e(2)), Some((Pid(1), 1)));
        assert_eq!(t.lookup(Pid(1), 2), Some(e(2)));
    }

    /// Reference-model check: the intrusive LRU behaves exactly like a naive
    /// recency-list implementation across a long mixed workload.
    #[test]
    fn matches_reference_lru_model() {
        use std::collections::VecDeque;
        let cap = 8;
        let mut t = Tlb::new(cap);
        let mut model: VecDeque<(Pid, u64)> = VecDeque::new(); // front = MRU
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let vpn = (x >> 33) % 24;
            let pid = Pid(x % 2);
            let model_hit = model.contains(&(pid, vpn));
            let real = t.lookup(pid, vpn);
            assert_eq!(real.is_some(), model_hit, "divergence at ({pid},{vpn})");
            if model_hit {
                let pos = model.iter().position(|k| *k == (pid, vpn)).expect("contains");
                model.remove(pos);
                model.push_front((pid, vpn));
            } else {
                t.insert(pid, vpn, e(vpn));
                if model.len() == cap {
                    model.pop_back();
                }
                model.push_front((pid, vpn));
            }
        }
    }
}
