//! # clio-proto — the Clio wire protocol
//!
//! Defines everything CLib (compute-node side) and CBoard (memory-node side)
//! agree on: identifiers, permissions, request/response packet layouts, the
//! per-packet Clio header, a byte-level codec, and the MTU
//! splitting/reassembly rules (paper §4.4–4.5).
//!
//! Design notes mirrored from the paper:
//!
//! * The transport is **connectionless**: every packet carries a fresh
//!   request id ([`ReqId`]) and, for retried requests, the id of the request
//!   it replaces (`retry_of`), so the memory node can deduplicate
//!   non-idempotent operations without per-client state (§4.5 T4).
//! * Each link-layer packet is **self-describing**: a fragment of a large
//!   write carries the absolute virtual address it targets, so the MN can
//!   execute fragments in any arrival order (§4.5 T1).
//! * Responses double as ACKs; there are no transport-level ACKs at all, and
//!   the only MN-generated control packets are link-layer NACKs for
//!   corrupted frames (§4.4) — a single [`Nack`], or one [`BatchNack`]
//!   covering every entry of a corrupted batch frame.
//! * Small same-destination packets may be **coalesced** in both
//!   directions: requests into one [`Batch`] frame ([`BatchBuilder`]),
//!   responses into one [`BatchResp`] frame ([`RespBatchBuilder`]), and the
//!   NACKs of one corrupted batch into a [`BatchNack`] frame
//!   ([`NackBatchBuilder`]), packed under MTU/op/byte budgets. Every entry
//!   keeps its own header, so execution, dedup, completion matching and
//!   window accounting remain per logical request.
//!
//! [`Batch`]: ClioPacket::Batch
//! [`BatchResp`]: ClioPacket::BatchResp
//! [`BatchNack`]: ClioPacket::BatchNack
//!
//! ```
//! use clio_proto::{ClioPacket, ReqHeader, ReqId, Pid, RequestBody, codec};
//!
//! let pkt = ClioPacket::Request {
//!     header: ReqHeader::single(ReqId(7), Pid(3)),
//!     body: RequestBody::Read { va: 0x1000, len: 64 },
//! };
//! let bytes = codec::encode(&pkt);
//! assert_eq!(codec::decode(&bytes).unwrap(), pkt);
//! ```
//!
//! [`Nack`]: ClioPacket::Nack

mod batch;
pub mod codec;
mod mtu;
mod packet;
mod types;

pub use batch::{BatchBuilder, NackBatchBuilder, RespBatchBuilder};
pub use mtu::{
    split_read_response, split_write, Reassembler, CLIO_REQ_HEADER_BYTES, CLIO_RESP_HEADER_BYTES,
    ETH_OVERHEAD_BYTES, MAX_READ_FRAG_PAYLOAD, MAX_WRITE_FRAG_PAYLOAD, MTU_BYTES,
};
pub use packet::{ClioPacket, ReqHeader, RequestBody, RespHeader, ResponseBody};
pub use types::{Perm, Pid, ReqId, Status};
