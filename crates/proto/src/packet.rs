//! Packet layouts: headers, request bodies and response bodies.

use bytes::Bytes;
use clio_trace::TraceCtx;

use crate::types::{Perm, Pid, ReqId, Status};

/// The Clio header attached to every request packet (§4.5 T1).
///
/// `pkt_index`/`pkt_count` describe the packet's position within a
/// multi-packet request (only writes exceed one packet); the MN uses the
/// count — not ordering — to know when a request is complete, so packets may
/// arrive in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqHeader {
    /// This packet's request id.
    pub req_id: ReqId,
    /// For retries: the id of the timed-out request this one replaces.
    pub retry_of: Option<ReqId>,
    /// Requesting process (protection domain).
    pub pid: Pid,
    /// Index of this packet within the request (0-based).
    pub pkt_index: u16,
    /// Total packets in the request.
    pub pkt_count: u16,
    /// Observability trace context. Models metadata carried in reserved
    /// header bits: it crosses the wire with the request but costs **zero**
    /// modeled bytes and is not serialized by the codec.
    pub trace: Option<TraceCtx>,
    /// The CN's smoothed RTT toward this MN, in nanoseconds, echoed so the
    /// MN's egress doorbell budget can derive from the same signal as the
    /// CN's request doorbell (5 encoded bytes; see `codec`).
    pub srtt_echo_ns: Option<u32>,
}

impl ReqHeader {
    /// Header for a single-packet request.
    pub fn single(req_id: ReqId, pid: Pid) -> Self {
        ReqHeader {
            req_id,
            retry_of: None,
            pid,
            pkt_index: 0,
            pkt_count: 1,
            trace: None,
            srtt_echo_ns: None,
        }
    }

    /// Marks this header as a retry of `orig`.
    pub fn retrying(mut self, orig: ReqId) -> Self {
        self.retry_of = Some(orig);
        self
    }
}

/// The header of every response packet. Responses double as ACKs (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RespHeader {
    /// The request this response answers.
    pub req_id: ReqId,
    /// Outcome.
    pub status: Status,
    /// Index of this packet within the response (only reads exceed one).
    pub pkt_index: u16,
    /// Total packets in the response.
    pub pkt_count: u16,
}

impl RespHeader {
    /// Header for a single-packet response.
    pub fn single(req_id: ReqId, status: Status) -> Self {
        RespHeader { req_id, status, pkt_index: 0, pkt_count: 1 }
    }
}

/// The operation carried by a request packet.
///
/// Atomics ([`RequestBody::AtomicTas`], [`AtomicStore`], [`AtomicCas`],
/// [`AtomicFaa`]) operate on 8-byte words and are serialized by the MN's
/// synchronization unit; Clio's `rlock`/`runlock` are built from `AtomicTas`
/// and `AtomicStore` (§4.5 T3).
///
/// [`AtomicStore`]: RequestBody::AtomicStore
/// [`AtomicCas`]: RequestBody::AtomicCas
/// [`AtomicFaa`]: RequestBody::AtomicFaa
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Read `len` bytes starting at `va`.
    Read {
        /// Start virtual address.
        va: u64,
        /// Bytes to read.
        len: u32,
    },
    /// One fragment of a (possibly multi-packet) write. `va` is the absolute
    /// target of **this fragment**, so fragments are order-independent.
    WriteFrag {
        /// Absolute virtual address this fragment writes.
        va: u64,
        /// Fragment payload.
        data: Bytes,
    },
    /// Allocate `size` bytes of virtual address space (slow path).
    Alloc {
        /// Requested size in bytes.
        size: u64,
        /// Permissions for the new range.
        perm: Perm,
        /// Optional fixed placement request (may be refused — §4.2
        /// "Limitation").
        fixed_va: Option<u64>,
    },
    /// Free a previously allocated range (slow path).
    Free {
        /// Start of the range.
        va: u64,
        /// Length of the range.
        size: u64,
    },
    /// Test-and-set the 8-byte word at `va` to 1; returns the old value.
    AtomicTas {
        /// Word address.
        va: u64,
    },
    /// Atomically store `value` into the 8-byte word at `va`.
    AtomicStore {
        /// Word address.
        va: u64,
        /// Value to store.
        value: u64,
    },
    /// Compare-and-swap on the 8-byte word at `va`; returns the old value.
    AtomicCas {
        /// Word address.
        va: u64,
        /// Expected current value.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Fetch-and-add on the 8-byte word at `va`; returns the old value.
    AtomicFaa {
        /// Word address.
        va: u64,
        /// Addend (wrapping).
        delta: u64,
    },
    /// Block subsequent requests from this PID until all its in-flight
    /// requests complete (`rfence`, §4.5 T3).
    Fence,
    /// Create the remote address space for a new PID (slow path).
    CreateAs,
    /// Tear down a PID's address space and release its memory (slow path).
    DestroyAs,
    /// Invoke a computation offload on the extend path (§4.6).
    OffloadCall {
        /// Which installed offload to run.
        offload: u16,
        /// Offload-defined operation code.
        opcode: u16,
        /// Offload-defined argument bytes.
        arg: Bytes,
    },
}

impl RequestBody {
    /// True if the MN treats this as non-idempotent and must deduplicate
    /// retries through the dedup buffer (writes and atomics, §4.5 T4).
    pub fn is_non_idempotent(&self) -> bool {
        matches!(
            self,
            RequestBody::WriteFrag { .. }
                | RequestBody::AtomicTas { .. }
                | RequestBody::AtomicStore { .. }
                | RequestBody::AtomicCas { .. }
                | RequestBody::AtomicFaa { .. }
        )
    }

    /// True if the request is dispatched to the software slow path
    /// (metadata operations, §3.2).
    pub fn is_slow_path(&self) -> bool {
        matches!(
            self,
            RequestBody::Alloc { .. }
                | RequestBody::Free { .. }
                | RequestBody::CreateAs
                | RequestBody::DestroyAs
        )
    }

    /// True if the request is dispatched to the extend path.
    pub fn is_extend_path(&self) -> bool {
        matches!(self, RequestBody::OffloadCall { .. })
    }

    /// Payload bytes carried by this body (data for writes/offload args).
    pub fn payload_len(&self) -> usize {
        match self {
            RequestBody::WriteFrag { data, .. } => data.len(),
            RequestBody::OffloadCall { arg, .. } => arg.len(),
            _ => 0,
        }
    }
}

/// The payload of a response packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseBody {
    /// One fragment of read data; `offset` is relative to the request's
    /// start address.
    DataFrag {
        /// Offset of this fragment within the read.
        offset: u32,
        /// Fragment bytes.
        data: Bytes,
    },
    /// Completion with no payload (writes, frees, fences, stores).
    Done,
    /// Result of an allocation: the assigned virtual address.
    Alloced {
        /// Start of the allocated range.
        va: u64,
    },
    /// Result of an atomic: the previous value of the word.
    AtomicOld {
        /// Value before the atomic applied.
        old: u64,
    },
    /// Offload-defined result bytes.
    OffloadReply {
        /// Result payload.
        data: Bytes,
    },
}

impl ResponseBody {
    /// Payload bytes carried by this body.
    pub fn payload_len(&self) -> usize {
        match self {
            ResponseBody::DataFrag { data, .. } => data.len(),
            ResponseBody::OffloadReply { data } => data.len(),
            _ => 0,
        }
    }
}

/// Any packet that crosses the wire between a CN and an MN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClioPacket {
    /// CN → MN request.
    Request {
        /// Per-packet Clio header.
        header: ReqHeader,
        /// Operation.
        body: RequestBody,
    },
    /// CN → MN batch: several small single-packet requests coalesced into
    /// one wire frame to amortize per-frame Ethernet overhead (§4.5 T1's
    /// async API makes such bursts common). Every entry keeps its own
    /// [`ReqHeader`] — its request id, `retry_of`, and pid — so the MN
    /// executes, deduplicates, and answers each entry exactly as if it had
    /// arrived alone; only the framing is shared.
    Batch {
        /// The coalesced requests, executed by the MN in order.
        requests: Vec<(ReqHeader, RequestBody)>,
    },
    /// MN → CN response (doubles as the ACK).
    Response {
        /// Response header.
        header: RespHeader,
        /// Result payload.
        body: ResponseBody,
    },
    /// MN → CN batch: several small single-packet responses coalesced into
    /// one wire frame — the egress mirror of [`Batch`](Self::Batch). The
    /// board's per-destination egress queue packs responses that complete
    /// within one doorbell hold; every entry keeps its own [`RespHeader`]
    /// (request id, status), so the CN transport completes, retries, and
    /// accounts for each entry exactly as if it had arrived alone.
    BatchResp {
        /// The coalesced responses.
        responses: Vec<(RespHeader, ResponseBody)>,
    },
    /// MN → CN link-layer NACK: the named request had a corrupted packet and
    /// should be retried immediately (§4.4).
    Nack {
        /// The corrupted request.
        req_id: ReqId,
    },
    /// MN → CN batched link-layer NACK: one corrupted [`Batch`](Self::Batch)
    /// frame NACKs **all** of its entries in a single frame, so the error
    /// path stays as frame-efficient as the fast path — a corrupted
    /// 16-entry batch costs one recovery frame, not sixteen. The CN
    /// transport unbatches at ingress and retries each entry exactly as if
    /// its NACK had arrived alone (and the resulting same-cause retries
    /// re-coalesce through the retry doorbell).
    BatchNack {
        /// The corrupted requests, in batch order.
        req_ids: Vec<ReqId>,
    },
}

impl ClioPacket {
    /// The request id this packet concerns. For a [`Batch`](Self::Batch),
    /// [`BatchResp`](Self::BatchResp) or [`BatchNack`](Self::BatchNack) this
    /// is the first entry's id (batches are never empty on the wire).
    pub fn req_id(&self) -> ReqId {
        match self {
            ClioPacket::Request { header, .. } => header.req_id,
            ClioPacket::Batch { requests } => {
                requests.first().map(|(h, _)| h.req_id).unwrap_or(ReqId(0))
            }
            ClioPacket::Response { header, .. } => header.req_id,
            ClioPacket::BatchResp { responses } => {
                responses.first().map(|(h, _)| h.req_id).unwrap_or(ReqId(0))
            }
            ClioPacket::Nack { req_id } => *req_id,
            ClioPacket::BatchNack { req_ids } => req_ids.first().copied().unwrap_or(ReqId(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classification() {
        assert!(RequestBody::Alloc { size: 1, perm: Perm::RW, fixed_va: None }.is_slow_path());
        assert!(RequestBody::Free { va: 0, size: 1 }.is_slow_path());
        assert!(RequestBody::CreateAs.is_slow_path());
        assert!(!RequestBody::Read { va: 0, len: 1 }.is_slow_path());
        assert!(
            RequestBody::OffloadCall { offload: 0, opcode: 0, arg: Bytes::new() }.is_extend_path()
        );
        assert!(!RequestBody::Fence.is_extend_path());
    }

    #[test]
    fn non_idempotent_ops_flagged() {
        assert!(
            RequestBody::WriteFrag { va: 0, data: Bytes::from_static(b"x") }.is_non_idempotent()
        );
        assert!(RequestBody::AtomicTas { va: 0 }.is_non_idempotent());
        assert!(RequestBody::AtomicCas { va: 0, expected: 0, new: 1 }.is_non_idempotent());
        assert!(RequestBody::AtomicFaa { va: 0, delta: 1 }.is_non_idempotent());
        assert!(RequestBody::AtomicStore { va: 0, value: 0 }.is_non_idempotent());
        assert!(!RequestBody::Read { va: 0, len: 8 }.is_non_idempotent());
        assert!(!RequestBody::Fence.is_non_idempotent());
    }

    #[test]
    fn header_builders() {
        let h = ReqHeader::single(ReqId(1), Pid(2)).retrying(ReqId(0));
        assert_eq!(h.retry_of, Some(ReqId(0)));
        assert_eq!((h.pkt_index, h.pkt_count), (0, 1));
        let r = RespHeader::single(ReqId(1), Status::Ok);
        assert!(r.status.is_ok());
    }

    #[test]
    fn req_id_extraction() {
        let p = ClioPacket::Nack { req_id: ReqId(42) };
        assert_eq!(p.req_id(), ReqId(42));
        let b = ClioPacket::BatchNack { req_ids: vec![ReqId(9), ReqId(10)] };
        assert_eq!(b.req_id(), ReqId(9));
    }

    #[test]
    fn payload_lengths() {
        assert_eq!(
            RequestBody::WriteFrag { va: 0, data: Bytes::from_static(b"abcd") }.payload_len(),
            4
        );
        assert_eq!(RequestBody::Read { va: 0, len: 100 }.payload_len(), 0);
        assert_eq!(
            ResponseBody::DataFrag { offset: 0, data: Bytes::from_static(b"ab") }.payload_len(),
            2
        );
        assert_eq!(ResponseBody::Done.payload_len(), 0);
    }
}
