//! MTU splitting and response reassembly (paper §4.5 T1).
//!
//! Requests or responses larger than the link MTU are split into independent
//! link-layer packets at the CN. Each write fragment carries the absolute
//! virtual address it targets, so the memory node can execute fragments in
//! any order; read-response fragments carry their offset, and CLib reassembles
//! them with [`Reassembler`] before delivering data to the application.

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::codec;
use crate::packet::{ClioPacket, ReqHeader, RequestBody, RespHeader, ResponseBody};
use crate::types::{Pid, ReqId, Status};

/// Link MTU: the maximum encoded Clio packet size, in bytes.
pub const MTU_BYTES: usize = 1500;

/// Per-frame Ethernet overhead charged by the timing model on top of the
/// encoded packet: preamble (8) + MAC header (14) + FCS (4) + inter-frame
/// gap (12).
pub const ETH_OVERHEAD_BYTES: usize = 38;

/// Encoded bytes of packet tag + request header.
pub const CLIO_REQ_HEADER_BYTES: usize = codec::REQ_HEADER_LEN;

/// Encoded bytes of packet tag + response header.
pub const CLIO_RESP_HEADER_BYTES: usize = codec::RESP_HEADER_LEN;

/// Encoded overhead of a `WriteFrag` body besides its payload.
const WRITE_FRAG_BODY_OVERHEAD: usize = 1 + 8 + 4; // tag + va + len
/// Encoded overhead of a `DataFrag` body besides its payload.
const DATA_FRAG_BODY_OVERHEAD: usize = 1 + 4 + 4; // tag + offset + len

/// Maximum write payload per packet.
pub const MAX_WRITE_FRAG_PAYLOAD: usize =
    MTU_BYTES - CLIO_REQ_HEADER_BYTES - WRITE_FRAG_BODY_OVERHEAD;

/// Maximum read-response payload per packet.
pub const MAX_READ_FRAG_PAYLOAD: usize =
    MTU_BYTES - CLIO_RESP_HEADER_BYTES - DATA_FRAG_BODY_OVERHEAD;

/// Splits a write of `data` at `va` into MTU-sized request packets.
///
/// Every fragment repeats the request id and carries its own absolute target
/// address; `pkt_count` tells the MN how many fragments make up the request.
/// Zero-length writes produce a single empty fragment so the request still
/// gets a response.
pub fn split_write(
    req_id: ReqId,
    retry_of: Option<ReqId>,
    pid: Pid,
    va: u64,
    data: Bytes,
) -> Vec<ClioPacket> {
    let count = data.len().div_ceil(MAX_WRITE_FRAG_PAYLOAD).max(1);
    assert!(count <= u16::MAX as usize, "write too large to fragment: {} bytes", data.len());
    let mut pkts = Vec::with_capacity(count);
    for i in 0..count {
        let lo = i * MAX_WRITE_FRAG_PAYLOAD;
        let hi = ((i + 1) * MAX_WRITE_FRAG_PAYLOAD).min(data.len());
        pkts.push(ClioPacket::Request {
            header: ReqHeader {
                req_id,
                retry_of,
                pid,
                pkt_index: i as u16,
                pkt_count: count as u16,
                trace: None,
                srtt_echo_ns: None,
            },
            body: RequestBody::WriteFrag { va: va + lo as u64, data: data.slice(lo..hi) },
        });
    }
    pkts
}

/// Splits read-response `data` into MTU-sized response packets.
pub fn split_read_response(req_id: ReqId, status: Status, data: Bytes) -> Vec<ClioPacket> {
    let count = data.len().div_ceil(MAX_READ_FRAG_PAYLOAD).max(1);
    assert!(count <= u16::MAX as usize, "response too large to fragment");
    let mut pkts = Vec::with_capacity(count);
    for i in 0..count {
        let lo = i * MAX_READ_FRAG_PAYLOAD;
        let hi = ((i + 1) * MAX_READ_FRAG_PAYLOAD).min(data.len());
        pkts.push(ClioPacket::Response {
            header: RespHeader { req_id, status, pkt_index: i as u16, pkt_count: count as u16 },
            body: ResponseBody::DataFrag { offset: lo as u32, data: data.slice(lo..hi) },
        });
    }
    pkts
}

#[derive(Debug, Default)]
struct Partial {
    expected: u16,
    got: Vec<Option<(u32, Bytes)>>,
    received: u16,
}

/// Reassembles multi-packet read responses at the CN (§4.5 T1).
///
/// Fragments may arrive in any order and duplicates are ignored. When the
/// last fragment of a request arrives, [`accept`](Reassembler::accept)
/// returns the full contiguous payload.
#[derive(Debug, Default)]
pub struct Reassembler {
    partials: HashMap<ReqId, Partial>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one response fragment. Returns the complete payload once all
    /// `pkt_count` fragments of the request have arrived.
    pub fn accept(&mut self, header: RespHeader, offset: u32, data: Bytes) -> Option<Bytes> {
        if header.pkt_count <= 1 {
            return Some(data);
        }
        let p = self.partials.entry(header.req_id).or_insert_with(|| Partial {
            expected: header.pkt_count,
            got: vec![None; header.pkt_count as usize],
            received: 0,
        });
        let idx = header.pkt_index as usize;
        if idx >= p.got.len() || p.got[idx].is_some() {
            return None; // duplicate or malformed index: ignore
        }
        p.got[idx] = Some((offset, data));
        p.received += 1;
        if p.received < p.expected {
            return None;
        }
        let p = self.partials.remove(&header.req_id).expect("just inserted");
        let mut frags: Vec<(u32, Bytes)> =
            p.got.into_iter().map(|f| f.expect("all fragments received")).collect();
        frags.sort_by_key(|(off, _)| *off);
        let total: usize = frags.iter().map(|(_, d)| d.len()).sum();
        let mut out = BytesMut::with_capacity(total);
        for (_, d) in frags {
            out.extend_from_slice(&d);
        }
        Some(out.freeze())
    }

    /// Drops any partial state for `req_id` (e.g. when the request times out
    /// and is retried under a new id).
    pub fn forget(&mut self, req_id: ReqId) {
        self.partials.remove(&req_id);
    }

    /// Number of requests with outstanding partial fragments.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode, wire_len};

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn fragments_fit_in_mtu() {
        let data = payload(1_000_000);
        for pkt in split_write(ReqId(1), None, Pid(1), 0x1000, data.clone()) {
            assert!(wire_len(&pkt) <= MTU_BYTES, "{} > MTU", wire_len(&pkt));
            assert_eq!(encode(&pkt).len(), wire_len(&pkt));
        }
        for pkt in split_read_response(ReqId(1), Status::Ok, data) {
            assert!(wire_len(&pkt) <= MTU_BYTES);
        }
    }

    #[test]
    fn small_write_is_single_packet() {
        let pkts = split_write(ReqId(1), None, Pid(1), 0, payload(100));
        assert_eq!(pkts.len(), 1);
        let ClioPacket::Request { header, .. } = &pkts[0] else { panic!() };
        assert_eq!((header.pkt_index, header.pkt_count), (0, 1));
    }

    #[test]
    fn empty_write_still_produces_a_packet() {
        let pkts = split_write(ReqId(1), None, Pid(1), 0, Bytes::new());
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn write_fragments_carry_absolute_addresses() {
        let data = payload(MAX_WRITE_FRAG_PAYLOAD * 2 + 17);
        let pkts = split_write(ReqId(9), None, Pid(1), 0x4000, data.clone());
        assert_eq!(pkts.len(), 3);
        let mut reconstructed = vec![0u8; data.len()];
        for pkt in &pkts {
            let ClioPacket::Request { header, body: RequestBody::WriteFrag { va, data: d } } = pkt
            else {
                panic!("expected write frag")
            };
            assert_eq!(header.req_id, ReqId(9));
            assert_eq!(header.pkt_count, 3);
            let off = (*va - 0x4000) as usize;
            reconstructed[off..off + d.len()].copy_from_slice(d);
        }
        assert_eq!(&reconstructed[..], &data[..]);
    }

    #[test]
    fn reassembly_in_any_order() {
        let data = payload(MAX_READ_FRAG_PAYLOAD * 3 + 5);
        let mut pkts = split_read_response(ReqId(3), Status::Ok, data.clone());
        pkts.reverse(); // worst-case arrival order
        let mut r = Reassembler::new();
        let mut out = None;
        for pkt in pkts {
            let ClioPacket::Response { header, body: ResponseBody::DataFrag { offset, data } } =
                pkt
            else {
                panic!("expected data frag")
            };
            let res = r.accept(header, offset, data);
            assert!(out.is_none() || res.is_none(), "completed twice");
            if res.is_some() {
                out = res;
            }
        }
        assert_eq!(out.expect("completed"), data);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn duplicates_ignored() {
        let data = payload(MAX_READ_FRAG_PAYLOAD + 1);
        let pkts = split_read_response(ReqId(3), Status::Ok, data.clone());
        assert_eq!(pkts.len(), 2);
        let frag = |i: usize| {
            let ClioPacket::Response { header, body: ResponseBody::DataFrag { offset, data } } =
                pkts[i].clone()
            else {
                panic!()
            };
            (header, offset, data)
        };
        let mut r = Reassembler::new();
        let (h0, o0, d0) = frag(0);
        assert!(r.accept(h0, o0, d0.clone()).is_none());
        assert!(r.accept(h0, o0, d0).is_none(), "duplicate must not complete");
        let (h1, o1, d1) = frag(1);
        assert_eq!(r.accept(h1, o1, d1).expect("complete"), data);
    }

    #[test]
    fn single_packet_response_passes_through() {
        let mut r = Reassembler::new();
        let h = RespHeader::single(ReqId(1), Status::Ok);
        let out = r.accept(h, 0, payload(10));
        assert_eq!(out.unwrap().len(), 10);
    }

    #[test]
    fn forget_discards_partial_state() {
        let data = payload(MAX_READ_FRAG_PAYLOAD + 1);
        let pkts = split_read_response(ReqId(3), Status::Ok, data);
        let ClioPacket::Response { header, body: ResponseBody::DataFrag { offset, data } } =
            pkts[0].clone()
        else {
            panic!()
        };
        let mut r = Reassembler::new();
        r.accept(header, offset, data);
        assert_eq!(r.pending(), 1);
        r.forget(ReqId(3));
        assert_eq!(r.pending(), 0);
    }
}
