//! MTU-bounded packing of small packets into batch frames, in both
//! directions: [`BatchBuilder`] packs requests into [`ClioPacket::Batch`]
//! (CN → MN), [`RespBatchBuilder`] packs responses into
//! [`ClioPacket::BatchResp`] (MN → CN), and [`NackBatchBuilder`] packs the
//! link-layer NACKs of one corrupted batch frame into
//! [`ClioPacket::BatchNack`] (MN → CN, the error-path mirror).
//!
//! Clio's asynchronous API (§4.5 T1) keeps many small requests in flight;
//! sent one per frame, a 16–64 B operation pays ~38 B of Ethernet overhead
//! plus a full Clio header of framing per op — and its reply pays the same
//! again on the board's 10 Gbps egress port. Both builders pack several
//! same-destination single-packet entries into one wire frame under three
//! budgets: the link MTU (always), a caller-chosen byte budget, and a
//! caller-chosen op-count budget. Every entry keeps its own header
//! ([`ReqHeader`] / [`RespHeader`]), so retries, deduplication, completion
//! matching and window accounting stay per logical request.

use crate::codec::{request_wire_len, response_wire_len, BATCH_OVERHEAD_BYTES, NACK_ENTRY_BYTES};
use crate::mtu::MTU_BYTES;
use crate::packet::{ClioPacket, ReqHeader, RequestBody, RespHeader, ResponseBody};
use crate::types::ReqId;

/// Accumulates request entries into an MTU-bounded batch frame.
///
/// `take` yields a plain [`ClioPacket::Request`] when only one entry
/// accumulated, so a lone request's wire image is byte-identical to the
/// unbatched protocol and batching is a pure overlay.
#[derive(Debug)]
pub struct BatchBuilder {
    entries: Vec<(ReqHeader, RequestBody)>,
    wire: usize,
    max_ops: usize,
    max_bytes: usize,
}

impl BatchBuilder {
    /// A builder admitting at most `max_ops` entries and at most
    /// `max_bytes` of encoded batch frame (clamped to the MTU; values below
    /// the smallest possible frame effectively disable multi-op batches).
    pub fn new(max_ops: usize, max_bytes: usize) -> Self {
        BatchBuilder {
            entries: Vec::new(),
            wire: BATCH_OVERHEAD_BYTES,
            max_ops: max_ops.max(1),
            max_bytes: max_bytes.min(MTU_BYTES),
        }
    }

    /// Entries accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encoded size of the batch frame built so far (tag + count + entries).
    pub fn wire_len(&self) -> usize {
        self.wire
    }

    /// Whether a request whose standalone encoding is `entry_wire` bytes
    /// ([`request_wire_len`]) can join the current batch without busting the
    /// op, byte, or MTU budget.
    pub fn fits(&self, entry_wire: usize) -> bool {
        self.entries.len() < self.max_ops && self.wire + entry_wire <= self.max_bytes
    }

    /// Appends an entry. Callers must check [`fits`](Self::fits) first.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the entry busts a budget.
    pub fn push(&mut self, header: ReqHeader, body: RequestBody) {
        let entry = request_wire_len(&body);
        debug_assert!(self.fits(entry), "entry of {entry} B pushed into a full batch");
        self.wire += entry;
        self.entries.push((header, body));
    }

    /// Takes the accumulated frame, leaving the builder empty for reuse.
    /// Returns `None` when nothing accumulated; a single entry degenerates
    /// to a plain [`ClioPacket::Request`] (no batch overhead on the wire).
    pub fn take(&mut self) -> Option<ClioPacket> {
        self.wire = BATCH_OVERHEAD_BYTES;
        match self.entries.len() {
            0 => None,
            1 => {
                let (header, body) = self.entries.pop().expect("one entry");
                Some(ClioPacket::Request { header, body })
            }
            _ => Some(ClioPacket::Batch { requests: std::mem::take(&mut self.entries) }),
        }
    }
}

/// Accumulates response entries into an MTU-bounded batch frame — the
/// egress mirror of [`BatchBuilder`], used by the board's per-destination
/// egress queue.
///
/// `take` yields a plain [`ClioPacket::Response`] when only one entry
/// accumulated, so a lone response's wire image is byte-identical to the
/// unbatched protocol and response batching is a pure overlay.
#[derive(Debug)]
pub struct RespBatchBuilder {
    entries: Vec<(RespHeader, ResponseBody)>,
    wire: usize,
    max_ops: usize,
    max_bytes: usize,
}

impl RespBatchBuilder {
    /// A builder admitting at most `max_ops` entries and at most
    /// `max_bytes` of encoded batch frame (clamped to the MTU).
    pub fn new(max_ops: usize, max_bytes: usize) -> Self {
        RespBatchBuilder {
            entries: Vec::new(),
            wire: BATCH_OVERHEAD_BYTES,
            max_ops: max_ops.max(1),
            max_bytes: max_bytes.min(MTU_BYTES),
        }
    }

    /// Entries accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encoded size of the batch frame built so far (tag + count + entries).
    pub fn wire_len(&self) -> usize {
        self.wire
    }

    /// Whether a response whose standalone encoding is `entry_wire` bytes
    /// ([`response_wire_len`]) can join the current batch without busting
    /// the op, byte, or MTU budget.
    pub fn fits(&self, entry_wire: usize) -> bool {
        self.entries.len() < self.max_ops && self.wire + entry_wire <= self.max_bytes
    }

    /// Appends an entry. Callers must check [`fits`](Self::fits) first.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the entry busts a budget.
    pub fn push(&mut self, header: RespHeader, body: ResponseBody) {
        let entry = response_wire_len(&body);
        debug_assert!(self.fits(entry), "response of {entry} B pushed into a full batch");
        self.wire += entry;
        self.entries.push((header, body));
    }

    /// Takes the accumulated frame, leaving the builder empty for reuse.
    /// Returns `None` when nothing accumulated; a single entry degenerates
    /// to a plain [`ClioPacket::Response`] (no batch overhead on the wire).
    pub fn take(&mut self) -> Option<ClioPacket> {
        self.wire = BATCH_OVERHEAD_BYTES;
        match self.entries.len() {
            0 => None,
            1 => {
                let (header, body) = self.entries.pop().expect("one entry");
                Some(ClioPacket::Response { header, body })
            }
            _ => Some(ClioPacket::BatchResp { responses: std::mem::take(&mut self.entries) }),
        }
    }
}

/// Accumulates request ids into an MTU-bounded [`ClioPacket::BatchNack`]
/// frame — the error-path mirror of [`RespBatchBuilder`], used by the board
/// when a corrupted batch frame must NACK every entry it carried.
///
/// `take` yields a plain [`ClioPacket::Nack`] when only one id accumulated,
/// so a lone NACK's wire image is byte-identical to the unbatched protocol
/// and NACK coalescing is a pure overlay.
#[derive(Debug)]
pub struct NackBatchBuilder {
    req_ids: Vec<ReqId>,
    max_ops: usize,
    max_bytes: usize,
}

impl NackBatchBuilder {
    /// A builder admitting at most `max_ops` ids and at most `max_bytes` of
    /// encoded batch frame (clamped to the MTU).
    pub fn new(max_ops: usize, max_bytes: usize) -> Self {
        NackBatchBuilder {
            req_ids: Vec::new(),
            max_ops: max_ops.max(1),
            max_bytes: max_bytes.min(MTU_BYTES),
        }
    }

    /// Ids accumulated so far.
    pub fn len(&self) -> usize {
        self.req_ids.len()
    }

    /// True when no id has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.req_ids.is_empty()
    }

    /// Encoded size of the batch frame built so far (tag + count + ids).
    pub fn wire_len(&self) -> usize {
        BATCH_OVERHEAD_BYTES + self.req_ids.len() * NACK_ENTRY_BYTES
    }

    /// Whether another id can join the current batch without busting the
    /// op, byte, or MTU budget.
    pub fn fits(&self) -> bool {
        self.req_ids.len() < self.max_ops && self.wire_len() + NACK_ENTRY_BYTES <= self.max_bytes
    }

    /// Appends an id. Callers must check [`fits`](Self::fits) first.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the id busts a budget.
    pub fn push(&mut self, req_id: ReqId) {
        debug_assert!(self.fits(), "NACK id pushed into a full batch");
        self.req_ids.push(req_id);
    }

    /// Takes the accumulated frame, leaving the builder empty for reuse.
    /// Returns `None` when nothing accumulated; a single id degenerates to a
    /// plain [`ClioPacket::Nack`] (no batch overhead on the wire).
    pub fn take(&mut self) -> Option<ClioPacket> {
        match self.req_ids.len() {
            0 => None,
            1 => {
                let req_id = self.req_ids.pop().expect("one id");
                Some(ClioPacket::Nack { req_id })
            }
            _ => Some(ClioPacket::BatchNack { req_ids: std::mem::take(&mut self.req_ids) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::wire_len;
    use crate::types::{Pid, Status};

    fn read_entry(id: u64) -> (ReqHeader, RequestBody) {
        (ReqHeader::single(ReqId(id), Pid(1)), RequestBody::Read { va: id * 64, len: 32 })
    }

    #[test]
    fn op_budget_enforced() {
        let mut b = BatchBuilder::new(2, MTU_BYTES);
        for id in 0..2 {
            let (h, body) = read_entry(id);
            assert!(b.fits(request_wire_len(&body)));
            b.push(h, body);
        }
        let (_, body) = read_entry(2);
        assert!(!b.fits(request_wire_len(&body)), "third op exceeds max_ops=2");
    }

    #[test]
    fn byte_budget_and_mtu_enforced() {
        let (_, body) = read_entry(0);
        let entry = request_wire_len(&body);
        // Budget for exactly two entries.
        let mut b = BatchBuilder::new(64, BATCH_OVERHEAD_BYTES + 2 * entry);
        let (h0, b0) = read_entry(0);
        let (h1, b1) = read_entry(1);
        b.push(h0, b0);
        b.push(h1, b1);
        assert!(!b.fits(entry));
        // A byte budget above the MTU is clamped to the MTU.
        let clamped = BatchBuilder::new(64, 1 << 20);
        assert!(!clamped.fits(MTU_BYTES + 1));
    }

    #[test]
    fn single_entry_degenerates_to_plain_request() {
        let mut b = BatchBuilder::new(16, MTU_BYTES);
        let (h, body) = read_entry(7);
        b.push(h, body.clone());
        let pkt = b.take().expect("one entry");
        assert_eq!(pkt, ClioPacket::Request { header: h, body });
        assert!(b.take().is_none(), "builder resets after take");
    }

    #[test]
    fn multi_entry_batch_wire_len_tracked_exactly() {
        let mut b = BatchBuilder::new(16, MTU_BYTES);
        for id in 0..5 {
            let (h, body) = read_entry(id);
            b.push(h, body);
        }
        let predicted = b.wire_len();
        let pkt = b.take().expect("batch");
        assert!(matches!(pkt, ClioPacket::Batch { ref requests } if requests.len() == 5));
        assert_eq!(wire_len(&pkt), predicted);
    }

    fn resp_entry(id: u64, n: usize) -> (RespHeader, ResponseBody) {
        (
            RespHeader::single(ReqId(id), Status::Ok),
            ResponseBody::DataFrag { offset: 0, data: vec![0u8; n].into() },
        )
    }

    #[test]
    fn resp_builder_enforces_budgets_and_degenerates() {
        let mut b = RespBatchBuilder::new(2, MTU_BYTES);
        let (h0, b0) = resp_entry(1, 16);
        let entry = response_wire_len(&b0);
        assert!(b.fits(entry));
        b.push(h0, b0.clone());
        let pkt = b.take().expect("one entry");
        assert_eq!(pkt, ClioPacket::Response { header: h0, body: b0 });
        assert!(b.take().is_none(), "builder resets after take");
        // Op budget.
        for id in 0..2 {
            let (h, body) = resp_entry(id, 16);
            b.push(h, body);
        }
        assert!(!b.fits(entry), "third entry exceeds max_ops=2");
        // Byte budget clamps to the MTU.
        let clamped = RespBatchBuilder::new(64, 1 << 20);
        assert!(!clamped.fits(MTU_BYTES + 1));
    }

    #[test]
    fn nack_builder_budgets_and_degeneration() {
        let mut b = NackBatchBuilder::new(2, MTU_BYTES);
        assert!(b.is_empty() && b.take().is_none());
        b.push(ReqId(1));
        let pkt = b.take().expect("one id");
        assert_eq!(pkt, ClioPacket::Nack { req_id: ReqId(1) }, "lone NACK stays plain");
        // Op budget.
        b.push(ReqId(1));
        b.push(ReqId(2));
        assert!(!b.fits(), "third id exceeds max_ops=2");
        let predicted = b.wire_len();
        let pkt = b.take().expect("batch");
        assert!(matches!(pkt, ClioPacket::BatchNack { ref req_ids } if req_ids.len() == 2));
        assert_eq!(wire_len(&pkt), predicted);
        assert!(b.is_empty(), "builder resets after take");
        // Byte budget: room for exactly three ids.
        let tight = NackBatchBuilder::new(64, BATCH_OVERHEAD_BYTES + 3 * NACK_ENTRY_BYTES);
        let mut tight = tight;
        for id in 0..3 {
            assert!(tight.fits());
            tight.push(ReqId(id));
        }
        assert!(!tight.fits(), "fourth id exceeds the byte budget");
    }

    #[test]
    fn multi_entry_resp_batch_wire_len_tracked_exactly() {
        let mut b = RespBatchBuilder::new(16, MTU_BYTES);
        for id in 0..5 {
            let (h, body) = resp_entry(id, 32);
            b.push(h, body);
        }
        let predicted = b.wire_len();
        let pkt = b.take().expect("batch");
        assert!(matches!(pkt, ClioPacket::BatchResp { ref responses } if responses.len() == 5));
        assert_eq!(wire_len(&pkt), predicted);
    }
}
