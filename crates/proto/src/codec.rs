//! Byte-level encoding of [`ClioPacket`]s.
//!
//! The encoding is fixed-layout (no varints) so that packet sizes are
//! predictable: the timing model can compute a packet's wire footprint with
//! [`wire_len`] without materializing bytes, and tests assert the two always
//! agree.

use bytes::{BufMut, Bytes, BytesMut};

use crate::packet::{ClioPacket, ReqHeader, RequestBody, RespHeader, ResponseBody};
use crate::types::{Perm, Pid, ReqId, Status};

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the packet was complete.
    Truncated,
    /// An unknown packet or body tag was encountered.
    BadTag(u8),
    /// An unknown status code was encountered.
    BadStatus(u8),
    /// Trailing bytes followed a complete packet.
    TrailingBytes(usize),
    /// A batch packet declared zero entries.
    EmptyBatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "packet truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::BadStatus(s) => write!(f, "unknown status code {s}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after packet"),
            CodecError::EmptyBatch => write!(f, "batch packet with zero entries"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_REQUEST: u8 = 0;
const TAG_RESPONSE: u8 = 1;
const TAG_NACK: u8 = 2;
const TAG_BATCH: u8 = 3;
const TAG_BATCH_RESP: u8 = 4;
const TAG_BATCH_NACK: u8 = 5;

const BODY_READ: u8 = 0;
const BODY_WRITE_FRAG: u8 = 1;
const BODY_ALLOC: u8 = 2;
const BODY_FREE: u8 = 3;
const BODY_TAS: u8 = 4;
const BODY_STORE: u8 = 5;
const BODY_CAS: u8 = 6;
const BODY_FAA: u8 = 7;
const BODY_FENCE: u8 = 8;
const BODY_CREATE_AS: u8 = 9;
const BODY_DESTROY_AS: u8 = 10;
const BODY_OFFLOAD: u8 = 11;

const RESP_DATA_FRAG: u8 = 0;
const RESP_DONE: u8 = 1;
const RESP_ALLOCED: u8 = 2;
const RESP_ATOMIC_OLD: u8 = 3;
const RESP_OFFLOAD: u8 = 4;

/// Encoded size of the packet tag plus a request header. The trailing
/// `1 + 4` is the srtt-echo flag byte plus value ([`ReqHeader::srtt_echo_ns`]);
/// the header's trace context intentionally contributes nothing — it models
/// reserved header bits and never costs modeled wire bytes.
pub const REQ_HEADER_LEN: usize = 1 + 8 + 1 + 8 + 8 + 2 + 2 + 1 + 4;
/// Encoded size of the packet tag plus a response header.
pub const RESP_HEADER_LEN: usize = 1 + 8 + 1 + 2 + 2;
/// Fixed framing cost of a batch packet (packet tag + u16 entry count),
/// shared by request batches and response batches. Each entry then costs
/// exactly what the same packet would cost standalone ([`request_wire_len`]
/// / [`response_wire_len`]), so batching `n` small packets saves `(n - 1)`
/// per-frame Ethernet overheads at the price of these 3 bytes.
pub const BATCH_OVERHEAD_BYTES: usize = 1 + 2;
/// Encoded size of a standalone NACK (packet tag + request id). A
/// batched-NACK entry costs [`NACK_ENTRY_BYTES`]; the id travels without the
/// per-entry tag byte because a NACK *is* just an id.
pub const NACK_WIRE_LEN: usize = 1 + 8;
/// Encoded size of one [`ClioPacket::BatchNack`] entry (a bare request id).
pub const NACK_ENTRY_BYTES: usize = 8;

fn put_req_header(buf: &mut BytesMut, h: &ReqHeader) {
    buf.put_u64_le(h.req_id.0);
    match h.retry_of {
        Some(r) => {
            buf.put_u8(1);
            buf.put_u64_le(r.0);
        }
        None => {
            buf.put_u8(0);
            buf.put_u64_le(0);
        }
    }
    buf.put_u64_le(h.pid.0);
    buf.put_u16_le(h.pkt_index);
    buf.put_u16_le(h.pkt_count);
    match h.srtt_echo_ns {
        Some(ns) => {
            buf.put_u8(1);
            buf.put_u32_le(ns);
        }
        None => {
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
    }
    // `h.trace` is deliberately not encoded (zero modeled wire bytes).
}

fn put_bytes(buf: &mut BytesMut, b: &Bytes) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn put_req_body(buf: &mut BytesMut, body: &RequestBody) {
    match body {
        RequestBody::Read { va, len } => {
            buf.put_u8(BODY_READ);
            buf.put_u64_le(*va);
            buf.put_u32_le(*len);
        }
        RequestBody::WriteFrag { va, data } => {
            buf.put_u8(BODY_WRITE_FRAG);
            buf.put_u64_le(*va);
            put_bytes(buf, data);
        }
        RequestBody::Alloc { size, perm, fixed_va } => {
            buf.put_u8(BODY_ALLOC);
            buf.put_u64_le(*size);
            buf.put_u8(perm.bits());
            match fixed_va {
                Some(va) => {
                    buf.put_u8(1);
                    buf.put_u64_le(*va);
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u64_le(0);
                }
            }
        }
        RequestBody::Free { va, size } => {
            buf.put_u8(BODY_FREE);
            buf.put_u64_le(*va);
            buf.put_u64_le(*size);
        }
        RequestBody::AtomicTas { va } => {
            buf.put_u8(BODY_TAS);
            buf.put_u64_le(*va);
        }
        RequestBody::AtomicStore { va, value } => {
            buf.put_u8(BODY_STORE);
            buf.put_u64_le(*va);
            buf.put_u64_le(*value);
        }
        RequestBody::AtomicCas { va, expected, new } => {
            buf.put_u8(BODY_CAS);
            buf.put_u64_le(*va);
            buf.put_u64_le(*expected);
            buf.put_u64_le(*new);
        }
        RequestBody::AtomicFaa { va, delta } => {
            buf.put_u8(BODY_FAA);
            buf.put_u64_le(*va);
            buf.put_u64_le(*delta);
        }
        RequestBody::Fence => buf.put_u8(BODY_FENCE),
        RequestBody::CreateAs => buf.put_u8(BODY_CREATE_AS),
        RequestBody::DestroyAs => buf.put_u8(BODY_DESTROY_AS),
        RequestBody::OffloadCall { offload, opcode, arg } => {
            buf.put_u8(BODY_OFFLOAD);
            buf.put_u16_le(*offload);
            buf.put_u16_le(*opcode);
            put_bytes(buf, arg);
        }
    }
}

fn put_response(buf: &mut BytesMut, header: &RespHeader, body: &ResponseBody) {
    buf.put_u8(TAG_RESPONSE);
    buf.put_u64_le(header.req_id.0);
    buf.put_u8(header.status.to_wire());
    buf.put_u16_le(header.pkt_index);
    buf.put_u16_le(header.pkt_count);
    match body {
        ResponseBody::DataFrag { offset, data } => {
            buf.put_u8(RESP_DATA_FRAG);
            buf.put_u32_le(*offset);
            put_bytes(buf, data);
        }
        ResponseBody::Done => buf.put_u8(RESP_DONE),
        ResponseBody::Alloced { va } => {
            buf.put_u8(RESP_ALLOCED);
            buf.put_u64_le(*va);
        }
        ResponseBody::AtomicOld { old } => {
            buf.put_u8(RESP_ATOMIC_OLD);
            buf.put_u64_le(*old);
        }
        ResponseBody::OffloadReply { data } => {
            buf.put_u8(RESP_OFFLOAD);
            put_bytes(buf, data);
        }
    }
}

/// Serializes a packet to its wire bytes.
pub fn encode(pkt: &ClioPacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(wire_len(pkt));
    match pkt {
        ClioPacket::Request { header, body } => {
            buf.put_u8(TAG_REQUEST);
            put_req_header(&mut buf, header);
            put_req_body(&mut buf, body);
        }
        ClioPacket::Batch { requests } => {
            debug_assert!(!requests.is_empty(), "batches must carry at least one request");
            buf.put_u8(TAG_BATCH);
            buf.put_u16_le(requests.len() as u16);
            // Each entry is a complete embedded request packet (tag
            // included), so an entry's encoded size is exactly
            // `request_wire_len` and unbatching reuses the request parser.
            for (header, body) in requests {
                buf.put_u8(TAG_REQUEST);
                put_req_header(&mut buf, header);
                put_req_body(&mut buf, body);
            }
        }
        ClioPacket::Response { header, body } => put_response(&mut buf, header, body),
        ClioPacket::BatchResp { responses } => {
            debug_assert!(!responses.is_empty(), "batches must carry at least one response");
            buf.put_u8(TAG_BATCH_RESP);
            buf.put_u16_le(responses.len() as u16);
            // As with request batches, each entry is a complete embedded
            // response packet, so entry size is exactly `response_wire_len`
            // and unbatching reuses the response parser.
            for (header, body) in responses {
                put_response(&mut buf, header, body);
            }
        }
        ClioPacket::Nack { req_id } => {
            buf.put_u8(TAG_NACK);
            buf.put_u64_le(req_id.0);
        }
        ClioPacket::BatchNack { req_ids } => {
            debug_assert!(!req_ids.is_empty(), "batches must carry at least one NACK");
            buf.put_u8(TAG_BATCH_NACK);
            buf.put_u16_le(req_ids.len() as u16);
            // Entries are bare ids (no embedded tag): a NACK carries nothing
            // but the request id, so `NACK_ENTRY_BYTES` is the whole entry.
            for id in req_ids {
                buf.put_u64_le(id.0);
            }
        }
    }
    buf.freeze()
}

/// The exact encoded size of one request (header + body) framed as a
/// standalone [`ClioPacket::Request`]. A batch entry costs exactly this
/// much, so callers can pack batches against the MTU analytically.
pub fn request_wire_len(body: &RequestBody) -> usize {
    REQ_HEADER_LEN
        + 1
        + match body {
            RequestBody::Read { .. } => 12,
            RequestBody::WriteFrag { data, .. } => 8 + 4 + data.len(),
            RequestBody::Alloc { .. } => 8 + 1 + 1 + 8,
            RequestBody::Free { .. } => 16,
            RequestBody::AtomicTas { .. } => 8,
            RequestBody::AtomicStore { .. } => 16,
            RequestBody::AtomicCas { .. } => 24,
            RequestBody::AtomicFaa { .. } => 16,
            RequestBody::Fence | RequestBody::CreateAs | RequestBody::DestroyAs => 0,
            RequestBody::OffloadCall { arg, .. } => 2 + 2 + 4 + arg.len(),
        }
}

/// The exact encoded size of one response (header + body) framed as a
/// standalone [`ClioPacket::Response`]. A response-batch entry costs exactly
/// this much, so the board's egress queue can pack response batches against
/// the MTU analytically.
pub fn response_wire_len(body: &ResponseBody) -> usize {
    RESP_HEADER_LEN
        + 1
        + match body {
            ResponseBody::DataFrag { data, .. } => 4 + 4 + data.len(),
            ResponseBody::Done => 0,
            ResponseBody::Alloced { .. } => 8,
            ResponseBody::AtomicOld { .. } => 8,
            ResponseBody::OffloadReply { data } => 4 + data.len(),
        }
}

/// The exact number of bytes [`encode`] will produce, computed analytically
/// (used by the timing model on every packet send).
pub fn wire_len(pkt: &ClioPacket) -> usize {
    match pkt {
        ClioPacket::Request { body, .. } => request_wire_len(body),
        ClioPacket::Batch { requests } => {
            BATCH_OVERHEAD_BYTES
                + requests.iter().map(|(_, body)| request_wire_len(body)).sum::<usize>()
        }
        ClioPacket::Response { body, .. } => response_wire_len(body),
        ClioPacket::BatchResp { responses } => {
            BATCH_OVERHEAD_BYTES
                + responses.iter().map(|(_, body)| response_wire_len(body)).sum::<usize>()
        }
        ClioPacket::Nack { .. } => NACK_WIRE_LEN,
        ClioPacket::BatchNack { req_ids } => {
            BATCH_OVERHEAD_BYTES + req_ids.len() * NACK_ENTRY_BYTES
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }
}

/// Parses one request (header + body, tag already consumed) from `r`.
fn read_request(r: &mut Reader<'_>) -> Result<(ReqHeader, RequestBody), CodecError> {
    let req_id = ReqId(r.u64()?);
    let has_retry = r.u8()? != 0;
    let retry_raw = r.u64()?;
    let retry_of = has_retry.then_some(ReqId(retry_raw));
    let pid = Pid(r.u64()?);
    let pkt_index = r.u16()?;
    let pkt_count = r.u16()?;
    let has_echo = r.u8()? != 0;
    let echo_raw = r.u32()?;
    let header = ReqHeader {
        req_id,
        retry_of,
        pid,
        pkt_index,
        pkt_count,
        trace: None,
        srtt_echo_ns: has_echo.then_some(echo_raw),
    };
    let body = match r.u8()? {
        BODY_READ => RequestBody::Read { va: r.u64()?, len: r.u32()? },
        BODY_WRITE_FRAG => RequestBody::WriteFrag { va: r.u64()?, data: r.bytes()? },
        BODY_ALLOC => {
            let size = r.u64()?;
            let perm = Perm::from_bits(r.u8()?);
            let has_fixed = r.u8()? != 0;
            let fixed_raw = r.u64()?;
            RequestBody::Alloc { size, perm, fixed_va: has_fixed.then_some(fixed_raw) }
        }
        BODY_FREE => RequestBody::Free { va: r.u64()?, size: r.u64()? },
        BODY_TAS => RequestBody::AtomicTas { va: r.u64()? },
        BODY_STORE => RequestBody::AtomicStore { va: r.u64()?, value: r.u64()? },
        BODY_CAS => RequestBody::AtomicCas { va: r.u64()?, expected: r.u64()?, new: r.u64()? },
        BODY_FAA => RequestBody::AtomicFaa { va: r.u64()?, delta: r.u64()? },
        BODY_FENCE => RequestBody::Fence,
        BODY_CREATE_AS => RequestBody::CreateAs,
        BODY_DESTROY_AS => RequestBody::DestroyAs,
        BODY_OFFLOAD => {
            RequestBody::OffloadCall { offload: r.u16()?, opcode: r.u16()?, arg: r.bytes()? }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok((header, body))
}

/// Parses one response (header + body, tag already consumed) from `r`.
fn read_response(r: &mut Reader<'_>) -> Result<(RespHeader, ResponseBody), CodecError> {
    let req_id = ReqId(r.u64()?);
    let status_raw = r.u8()?;
    let status = Status::from_wire(status_raw).ok_or(CodecError::BadStatus(status_raw))?;
    let pkt_index = r.u16()?;
    let pkt_count = r.u16()?;
    let header = RespHeader { req_id, status, pkt_index, pkt_count };
    let body = match r.u8()? {
        RESP_DATA_FRAG => ResponseBody::DataFrag { offset: r.u32()?, data: r.bytes()? },
        RESP_DONE => ResponseBody::Done,
        RESP_ALLOCED => ResponseBody::Alloced { va: r.u64()? },
        RESP_ATOMIC_OLD => ResponseBody::AtomicOld { old: r.u64()? },
        RESP_OFFLOAD => ResponseBody::OffloadReply { data: r.bytes()? },
        t => return Err(CodecError::BadTag(t)),
    };
    Ok((header, body))
}

/// Parses a packet from wire bytes.
///
/// # Errors
///
/// Returns a [`CodecError`] for truncated input, unknown tags/status codes,
/// empty batches, or trailing garbage.
pub fn decode(bytes: &[u8]) -> Result<ClioPacket, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let pkt = match r.u8()? {
        TAG_REQUEST => {
            let (header, body) = read_request(&mut r)?;
            ClioPacket::Request { header, body }
        }
        TAG_BATCH => {
            let count = r.u16()? as usize;
            if count == 0 {
                return Err(CodecError::EmptyBatch);
            }
            let mut requests = Vec::with_capacity(count);
            for _ in 0..count {
                match r.u8()? {
                    TAG_REQUEST => requests.push(read_request(&mut r)?),
                    t => return Err(CodecError::BadTag(t)),
                }
            }
            ClioPacket::Batch { requests }
        }
        TAG_RESPONSE => {
            let (header, body) = read_response(&mut r)?;
            ClioPacket::Response { header, body }
        }
        TAG_BATCH_RESP => {
            let count = r.u16()? as usize;
            if count == 0 {
                return Err(CodecError::EmptyBatch);
            }
            let mut responses = Vec::with_capacity(count);
            for _ in 0..count {
                match r.u8()? {
                    TAG_RESPONSE => responses.push(read_response(&mut r)?),
                    t => return Err(CodecError::BadTag(t)),
                }
            }
            ClioPacket::BatchResp { responses }
        }
        TAG_NACK => ClioPacket::Nack { req_id: ReqId(r.u64()?) },
        TAG_BATCH_NACK => {
            let count = r.u16()? as usize;
            if count == 0 {
                return Err(CodecError::EmptyBatch);
            }
            let mut req_ids = Vec::with_capacity(count);
            for _ in 0..count {
                req_ids.push(ReqId(r.u64()?));
            }
            ClioPacket::BatchNack { req_ids }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok(pkt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pkt: ClioPacket) {
        let bytes = encode(&pkt);
        assert_eq!(bytes.len(), wire_len(&pkt), "wire_len mismatch for {pkt:?}");
        assert_eq!(decode(&bytes).expect("decode"), pkt);
    }

    #[test]
    fn all_request_bodies_roundtrip() {
        let hdr = ReqHeader {
            req_id: ReqId(0xDEAD),
            retry_of: Some(ReqId(0xBEEF)),
            pid: Pid(12),
            pkt_index: 3,
            pkt_count: 9,
            trace: None,
            srtt_echo_ns: Some(42_500),
        };
        let bodies = vec![
            RequestBody::Read { va: 0x4000_0000, len: 4096 },
            RequestBody::WriteFrag { va: 0x1234, data: Bytes::from_static(b"hello world") },
            RequestBody::Alloc { size: 1 << 22, perm: Perm::RW, fixed_va: Some(0x8000) },
            RequestBody::Alloc { size: 64, perm: Perm::READ, fixed_va: None },
            RequestBody::Free { va: 0x8000, size: 1 << 22 },
            RequestBody::AtomicTas { va: 0x10 },
            RequestBody::AtomicStore { va: 0x10, value: 0 },
            RequestBody::AtomicCas { va: 0x10, expected: 1, new: 2 },
            RequestBody::AtomicFaa { va: 0x10, delta: u64::MAX },
            RequestBody::Fence,
            RequestBody::CreateAs,
            RequestBody::DestroyAs,
            RequestBody::OffloadCall { offload: 2, opcode: 7, arg: Bytes::from_static(b"arg") },
        ];
        for body in bodies {
            roundtrip(ClioPacket::Request { header: hdr, body });
        }
    }

    #[test]
    fn all_response_bodies_roundtrip() {
        let hdr = RespHeader { req_id: ReqId(5), status: Status::Ok, pkt_index: 0, pkt_count: 2 };
        let bodies = vec![
            ResponseBody::DataFrag { offset: 1024, data: Bytes::from_static(b"data") },
            ResponseBody::Done,
            ResponseBody::Alloced { va: 0xAA55 },
            ResponseBody::AtomicOld { old: 7 },
            ResponseBody::OffloadReply { data: Bytes::from_static(b"ret") },
        ];
        for body in bodies {
            roundtrip(ClioPacket::Response { header: hdr, body });
        }
    }

    #[test]
    fn error_statuses_roundtrip() {
        for status in [Status::InvalidAddr, Status::PermDenied, Status::Moved] {
            roundtrip(ClioPacket::Response {
                header: RespHeader::single(ReqId(1), status),
                body: ResponseBody::Done,
            });
        }
    }

    #[test]
    fn nack_roundtrips() {
        roundtrip(ClioPacket::Nack { req_id: ReqId(u64::MAX) });
    }

    #[test]
    fn batch_nack_roundtrips_and_costs_entries_exactly() {
        let pkt = ClioPacket::BatchNack { req_ids: (1..=16).map(ReqId).collect() };
        roundtrip(pkt.clone());
        assert_eq!(wire_len(&pkt), BATCH_OVERHEAD_BYTES + 16 * NACK_ENTRY_BYTES);
        // A coalesced 16-entry NACK frame is far cheaper than 16 standalone
        // NACK frames' payloads, before even counting Ethernet overheads.
        assert!(wire_len(&pkt) < 16 * NACK_WIRE_LEN);
    }

    #[test]
    fn empty_batch_nack_rejected() {
        // tag + count 0.
        assert_eq!(decode(&[5, 0, 0]), Err(CodecError::EmptyBatch));
    }

    #[test]
    fn batch_roundtrips() {
        let requests = vec![
            (ReqHeader::single(ReqId(1), Pid(3)), RequestBody::Read { va: 0x1000, len: 64 }),
            (
                ReqHeader::single(ReqId(2), Pid(3)).retrying(ReqId(1)),
                RequestBody::WriteFrag { va: 0x2000, data: Bytes::from_static(b"payload") },
            ),
            (ReqHeader::single(ReqId(3), Pid(4)), RequestBody::AtomicFaa { va: 0x10, delta: 2 }),
        ];
        roundtrip(ClioPacket::Batch { requests });
    }

    #[test]
    fn batch_entry_costs_exactly_one_standalone_request() {
        let header = ReqHeader::single(ReqId(9), Pid(1));
        let body = RequestBody::Read { va: 0x4000, len: 16 };
        let single = wire_len(&ClioPacket::Request { header, body: body.clone() });
        assert_eq!(single, request_wire_len(&body));
        let batch = ClioPacket::Batch {
            requests: vec![(header, body.clone()), (header, body.clone()), (header, body)],
        };
        assert_eq!(wire_len(&batch), BATCH_OVERHEAD_BYTES + 3 * single);
    }

    #[test]
    fn batch_resp_roundtrips() {
        let responses = vec![
            (
                RespHeader::single(ReqId(1), Status::Ok),
                ResponseBody::DataFrag { offset: 0, data: Bytes::from_static(b"abcd") },
            ),
            (RespHeader::single(ReqId(2), Status::Ok), ResponseBody::Done),
            (RespHeader::single(ReqId(3), Status::PermDenied), ResponseBody::Done),
            (RespHeader::single(ReqId(4), Status::Ok), ResponseBody::AtomicOld { old: 9 }),
        ];
        roundtrip(ClioPacket::BatchResp { responses });
    }

    #[test]
    fn batch_resp_entry_costs_exactly_one_standalone_response() {
        let header = RespHeader::single(ReqId(9), Status::Ok);
        let body = ResponseBody::DataFrag { offset: 0, data: Bytes::from_static(b"xy") };
        let single = wire_len(&ClioPacket::Response { header, body: body.clone() });
        assert_eq!(single, response_wire_len(&body));
        let batch = ClioPacket::BatchResp {
            responses: vec![(header, body.clone()), (header, body.clone()), (header, body)],
        };
        assert_eq!(wire_len(&batch), BATCH_OVERHEAD_BYTES + 3 * single);
    }

    #[test]
    fn empty_batch_rejected() {
        // tag + count 0, for both batch directions.
        assert_eq!(decode(&[3, 0, 0]), Err(CodecError::EmptyBatch));
        assert_eq!(decode(&[4, 0, 0]), Err(CodecError::EmptyBatch));
        assert!(CodecError::EmptyBatch.to_string().contains("zero"));
    }

    #[test]
    fn batch_resp_with_bad_entry_tag_rejected() {
        let pkt = ClioPacket::BatchResp {
            responses: vec![(RespHeader::single(ReqId(1), Status::Ok), ResponseBody::Done)],
        };
        let mut bytes = encode(&pkt).to_vec();
        bytes[3] = 99; // the entry's embedded TAG_RESPONSE byte
        assert_eq!(decode(&bytes), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn batch_with_bad_entry_tag_rejected() {
        let pkt = ClioPacket::Batch {
            requests: vec![(
                ReqHeader::single(ReqId(1), Pid(1)),
                RequestBody::Read { va: 0, len: 8 },
            )],
        };
        let mut bytes = encode(&pkt).to_vec();
        bytes[3] = 99; // the entry's embedded TAG_REQUEST byte
        assert_eq!(decode(&bytes), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn truncated_input_errors() {
        let pkt = ClioPacket::Request {
            header: ReqHeader::single(ReqId(1), Pid(1)),
            body: RequestBody::Read { va: 0, len: 64 },
        };
        let bytes = encode(&pkt);
        for cut in 0..bytes.len() {
            assert_eq!(decode(&bytes[..cut]), Err(CodecError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let pkt = ClioPacket::Nack { req_id: ReqId(1) };
        let mut bytes = encode(&pkt).to_vec();
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(decode(&[99]), Err(CodecError::BadTag(99)));
        let mut resp = encode(&ClioPacket::Response {
            header: RespHeader::single(ReqId(1), Status::Ok),
            body: ResponseBody::Done,
        })
        .to_vec();
        resp[9] = 77; // status byte
        assert_eq!(decode(&resp), Err(CodecError::BadStatus(77)));
    }

    #[test]
    fn error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadTag(3).to_string().contains('3'));
    }
}
