//! Protocol-level identifiers, permissions and status codes.

use std::fmt;

/// A global process identifier — Clio's protection domain.
///
/// Clio assigns every application a cluster-unique PID when it starts
/// (paper §3.1); the PID names the process's **remote address space (RAS)**,
/// so page-table entries, permission checks and allocation trees are all
/// keyed by `(Pid, virtual page)`. Processes on different CNs that share a
/// RAS present the same PID, and extend-path offloads get their own PID
/// (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A request identifier, unique among a CN's outstanding requests.
///
/// Request ids tie responses back to requests (responses double as ACKs) and
/// key the MN-side dedup buffer. A retry gets a **fresh** id plus a
/// `retry_of` pointer to the id it replaces (§4.5 T4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Access permissions attached to an allocated virtual address range,
/// checked by the fast path on every access (requirement R5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perm(u8);

impl Perm {
    /// No access.
    pub const NONE: Perm = Perm(0);
    /// Read permission.
    pub const READ: Perm = Perm(1);
    /// Write permission.
    pub const WRITE: Perm = Perm(2);
    /// Read + write.
    pub const RW: Perm = Perm(3);

    /// True if all permissions in `other` are present in `self`.
    pub fn allows(self, other: Perm) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two permission sets.
    pub fn union(self, other: Perm) -> Perm {
        Perm(self.0 | other.0)
    }

    /// The raw bits (wire encoding).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs from wire bits, masking unknown flags.
    pub fn from_bits(bits: u8) -> Perm {
        Perm(bits & Self::RW.0)
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = if self.allows(Perm::READ) { "r" } else { "-" };
        let w = if self.allows(Perm::WRITE) { "w" } else { "-" };
        write!(f, "{r}{w}")
    }
}

/// Outcome of a memory request, carried in every response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Status {
    /// Success.
    #[default]
    Ok,
    /// The address is not mapped in the requesting process's RAS.
    InvalidAddr,
    /// The mapping exists but does not grant the requested access.
    PermDenied,
    /// The MN could not allocate virtual addresses (hash overflow after
    /// retries, or address space exhausted).
    OutOfVirtualMemory,
    /// The MN has no free physical pages left.
    OutOfPhysicalMemory,
    /// The addressed region has been migrated to another MN; the CN should
    /// refresh its routing and retry (§4.7).
    Moved,
    /// The request conflicts with an in-flight metadata operation (e.g. an
    /// access racing an `rfree`) and must be retried by the caller.
    Conflict,
    /// The request type or offload id is not recognized by this MN.
    Unsupported,
}

impl Status {
    /// True for [`Status::Ok`].
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }

    /// Wire encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::InvalidAddr => 1,
            Status::PermDenied => 2,
            Status::OutOfVirtualMemory => 3,
            Status::OutOfPhysicalMemory => 4,
            Status::Moved => 5,
            Status::Conflict => 6,
            Status::Unsupported => 7,
        }
    }

    /// Wire decoding.
    ///
    /// # Errors
    ///
    /// Returns `None` for unknown codes.
    pub fn from_wire(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::InvalidAddr,
            2 => Status::PermDenied,
            3 => Status::OutOfVirtualMemory,
            4 => Status::OutOfPhysicalMemory,
            5 => Status::Moved,
            6 => Status::Conflict,
            7 => Status::Unsupported,
            _ => return None,
        })
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Ok => "ok",
            Status::InvalidAddr => "invalid address",
            Status::PermDenied => "permission denied",
            Status::OutOfVirtualMemory => "out of virtual memory",
            Status::OutOfPhysicalMemory => "out of physical memory",
            Status::Moved => "region moved",
            Status::Conflict => "conflicting metadata operation in flight",
            Status::Unsupported => "unsupported request",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_lattice() {
        assert!(Perm::RW.allows(Perm::READ));
        assert!(Perm::RW.allows(Perm::WRITE));
        assert!(Perm::RW.allows(Perm::RW));
        assert!(!Perm::READ.allows(Perm::WRITE));
        assert!(!Perm::NONE.allows(Perm::READ));
        assert!(Perm::READ.union(Perm::WRITE) == Perm::RW);
        assert!(Perm::NONE.allows(Perm::NONE));
    }

    #[test]
    fn perm_wire_roundtrip_masks_unknown_bits() {
        assert_eq!(Perm::from_bits(Perm::RW.bits()), Perm::RW);
        assert_eq!(Perm::from_bits(0xFF), Perm::RW);
    }

    #[test]
    fn status_wire_roundtrip() {
        for s in [
            Status::Ok,
            Status::InvalidAddr,
            Status::PermDenied,
            Status::OutOfVirtualMemory,
            Status::OutOfPhysicalMemory,
            Status::Moved,
            Status::Conflict,
            Status::Unsupported,
        ] {
            assert_eq!(Status::from_wire(s.to_wire()), Some(s));
        }
        assert_eq!(Status::from_wire(200), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Perm::READ.to_string(), "r-");
        assert_eq!(Perm::RW.to_string(), "rw");
        assert_eq!(Pid(4).to_string(), "pid4");
        assert_eq!(ReqId(9).to_string(), "req9");
        assert!(Status::PermDenied.to_string().contains("denied"));
    }
}
