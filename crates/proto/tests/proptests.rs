//! Property tests: the wire codec and MTU splitting never lose or corrupt
//! information, for arbitrary inputs.

use bytes::Bytes;
use clio_proto::{
    codec, split_read_response, split_write, ClioPacket, Perm, Pid, Reassembler, ReqHeader, ReqId,
    RequestBody, RespHeader, ResponseBody, Status, MTU_BYTES,
};
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::InvalidAddr),
        Just(Status::PermDenied),
        Just(Status::OutOfVirtualMemory),
        Just(Status::OutOfPhysicalMemory),
        Just(Status::Moved),
        Just(Status::Conflict),
        Just(Status::Unsupported),
    ]
}

fn arb_req_header() -> impl Strategy<Value = ReqHeader> {
    (
        any::<u64>(),
        any::<Option<u64>>(),
        any::<u64>(),
        any::<u16>(),
        1u16..=64,
        any::<Option<u32>>(),
    )
        .prop_map(|(id, retry, pid, idx, cnt, echo)| ReqHeader {
            req_id: ReqId(id),
            retry_of: retry.map(ReqId),
            pid: Pid(pid),
            pkt_index: idx % cnt,
            pkt_count: cnt,
            trace: None,
            srtt_echo_ns: echo,
        })
}

fn arb_request_body() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        (any::<u64>(), any::<u32>()).prop_map(|(va, len)| RequestBody::Read { va, len }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..1024))
            .prop_map(|(va, d)| RequestBody::WriteFrag { va, data: Bytes::from(d) }),
        (any::<u64>(), 0u8..4, any::<Option<u64>>()).prop_map(|(size, p, fixed)| {
            RequestBody::Alloc { size, perm: Perm::from_bits(p), fixed_va: fixed }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(va, size)| RequestBody::Free { va, size }),
        any::<u64>().prop_map(|va| RequestBody::AtomicTas { va }),
        (any::<u64>(), any::<u64>()).prop_map(|(va, value)| RequestBody::AtomicStore { va, value }),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(va, expected, new)| RequestBody::AtomicCas { va, expected, new }),
        (any::<u64>(), any::<u64>()).prop_map(|(va, delta)| RequestBody::AtomicFaa { va, delta }),
        Just(RequestBody::Fence),
        Just(RequestBody::CreateAs),
        Just(RequestBody::DestroyAs),
        (any::<u16>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..512)).prop_map(
            |(o, op, a)| RequestBody::OffloadCall { offload: o, opcode: op, arg: Bytes::from(a) }
        ),
    ]
}

fn arb_response() -> impl Strategy<Value = ClioPacket> {
    (
        any::<u64>(),
        arb_status(),
        prop_oneof![
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..1024))
                .prop_map(|(off, d)| ResponseBody::DataFrag { offset: off, data: Bytes::from(d) }),
            Just(ResponseBody::Done),
            any::<u64>().prop_map(|va| ResponseBody::Alloced { va }),
            any::<u64>().prop_map(|old| ResponseBody::AtomicOld { old }),
            proptest::collection::vec(any::<u8>(), 0..512)
                .prop_map(|d| ResponseBody::OffloadReply { data: Bytes::from(d) }),
        ],
    )
        .prop_map(|(id, status, body)| ClioPacket::Response {
            header: RespHeader::single(ReqId(id), status),
            body,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_codec_roundtrips(header in arb_req_header(), body in arb_request_body()) {
        let pkt = ClioPacket::Request { header, body };
        let bytes = codec::encode(&pkt);
        prop_assert_eq!(bytes.len(), codec::wire_len(&pkt));
        prop_assert_eq!(codec::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn batch_codec_roundtrips(
        entries in proptest::collection::vec((arb_req_header(), arb_request_body()), 1..24),
    ) {
        let pkt = ClioPacket::Batch { requests: entries };
        let bytes = codec::encode(&pkt);
        prop_assert_eq!(bytes.len(), codec::wire_len(&pkt));
        prop_assert_eq!(codec::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn batch_truncation_never_panics(
        entries in proptest::collection::vec((arb_req_header(), arb_request_body()), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = codec::encode(&ClioPacket::Batch { requests: entries });
        let cut = cut.index(bytes.len());
        let _ = codec::decode(&bytes[..cut]);
    }

    #[test]
    fn response_codec_roundtrips(pkt in arb_response()) {
        let bytes = codec::encode(&pkt);
        prop_assert_eq!(bytes.len(), codec::wire_len(&pkt));
        prop_assert_eq!(codec::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn truncation_never_panics(pkt in arb_response(), cut in any::<prop::sample::Index>()) {
        let bytes = codec::encode(&pkt);
        let cut = cut.index(bytes.len());
        // Any prefix either fails cleanly or (cut == len) succeeds.
        let _ = codec::decode(&bytes[..cut]);
    }

    #[test]
    fn split_write_reconstructs_exactly(
        va in 0u64..(1 << 40),
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
    ) {
        let pkts = split_write(ReqId(1), None, Pid(2), va, Bytes::from(data.clone()));
        prop_assert!(!pkts.is_empty());
        let mut out = vec![0u8; data.len()];
        let mut count_seen = None;
        for pkt in &pkts {
            prop_assert!(codec::wire_len(pkt) <= MTU_BYTES);
            let ClioPacket::Request { header, body: RequestBody::WriteFrag { va: fva, data: d } } =
                pkt else { panic!("not a write frag") };
            prop_assert_eq!(*count_seen.get_or_insert(header.pkt_count), header.pkt_count);
            let off = (fva - va) as usize;
            out[off..off + d.len()].copy_from_slice(d);
        }
        prop_assert_eq!(out, data);
    }

    #[test]
    fn reassembly_is_order_independent(
        data in proptest::collection::vec(any::<u8>(), 1..20_000),
        order_seed in any::<u64>(),
    ) {
        let payload = Bytes::from(data.clone());
        let mut pkts = split_read_response(ReqId(9), Status::Ok, payload);
        // Deterministic shuffle from the seed.
        let mut s = order_seed;
        for i in (1..pkts.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            pkts.swap(i, (s as usize) % (i + 1));
        }
        let mut r = Reassembler::new();
        let mut result = None;
        for pkt in pkts {
            let ClioPacket::Response { header, body: ResponseBody::DataFrag { offset, data } } =
                pkt else { panic!("not a data frag") };
            if let Some(full) = r.accept(header, offset, data) {
                prop_assert!(result.is_none(), "completed twice");
                result = Some(full);
            }
        }
        prop_assert_eq!(&result.expect("must complete")[..], &data[..]);
        prop_assert_eq!(r.pending(), 0);
    }
}
