//! Unified metrics: shared-handle counters/gauges/histograms and the
//! [`Registry`] that snapshots and resets them all uniformly.
//!
//! Components own the handles (cheap `Rc` clones) and bump them inline;
//! registering a handle under a name gives the registry shared access for
//! [`Registry::snapshot`] and [`Registry::reset`]. Because registry and
//! component address the *same* cell, there is no snapshot/reset drift: a
//! reset is immediately visible to the component, and a snapshot always
//! reflects the component's latest increments.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use clio_sim::stats::{Histogram, LatencySummary};
use clio_sim::SimDuration;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Zeroes the counter (shared across all clones).
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// A last-writer-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<u64>>);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Zeroes the gauge (shared across all clones).
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// A shared-handle latency histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Rc<RefCell<Histogram>>);

impl HistogramHandle {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (typically nanoseconds).
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: SimDuration) {
        self.0.borrow_mut().record_duration(d);
    }

    /// A point-in-time summary.
    pub fn summary(&self) -> LatencySummary {
        self.0.borrow().summary()
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }

    /// Clears all samples (shared across all clones).
    pub fn reset(&self) {
        *self.0.borrow_mut() = Histogram::new();
    }
}

/// A name-keyed collection of metric handles with a single snapshot/reset
/// surface. Names are dot-separated by convention (`cn0.transport.retries`).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// A plain-data copy of every registered metric at one instant.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, LatencySummary>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter handle under `name` (re-registering a name
    /// replaces the old handle).
    pub fn register_counter(&mut self, name: impl Into<String>, c: Counter) {
        self.counters.insert(name.into(), c);
    }

    /// Registers a gauge handle under `name`.
    pub fn register_gauge(&mut self, name: impl Into<String>, g: Gauge) {
        self.gauges.insert(name.into(), g);
    }

    /// Registers a histogram handle under `name`.
    pub fn register_histogram(&mut self, name: impl Into<String>, h: HistogramHandle) {
        self.histograms.insert(name.into(), h);
    }

    /// A registered counter's current value (`None` if unknown).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(Counter::get)
    }

    /// A registered gauge's current value (`None` if unknown).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self.histograms.iter().map(|(k, v)| (k.clone(), v.summary())).collect(),
        }
    }

    /// Zeroes **every** registered metric — counters, gauges, and
    /// histograms alike — through the shared handles, so components see the
    /// reset immediately and no metric is left carrying pre-reset state.
    pub fn reset(&self) {
        self.counters.values().for_each(Counter::reset);
        self.gauges.values().for_each(Gauge::reset);
        self.histograms.values().for_each(HistogramHandle::reset);
    }

    /// Number of registered metrics (all kinds).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_registry() {
        let mut reg = Registry::new();
        let c = Counter::new();
        let g = Gauge::new();
        let h = HistogramHandle::new();
        reg.register_counter("cn0.retries", c.clone());
        reg.register_gauge("mn0.srtt_echo_ns", g.clone());
        reg.register_histogram("cn0.rtt", h.clone());
        c.add(3);
        g.set(1200);
        h.record(500);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["cn0.retries"], 3);
        assert_eq!(snap.gauges["mn0.srtt_echo_ns"], 1200);
        assert_eq!(snap.histograms["cn0.rtt"].count, 1);
        assert_eq!(reg.counter("cn0.retries"), Some(3));
        assert_eq!(reg.counter("nope"), None);
    }

    #[test]
    fn reset_zeroes_every_metric_uniformly() {
        // Regression for the stats-reset drift: every metric kind must
        // observe one reset, through the same shared cells the component
        // increments.
        let mut reg = Registry::new();
        let c = Counter::new();
        let g = Gauge::new();
        let h = HistogramHandle::new();
        reg.register_counter("a", c.clone());
        reg.register_gauge("b", g.clone());
        reg.register_histogram("c", h.clone());
        c.inc();
        g.set(7);
        h.record(9);
        reg.reset();
        // The registry sees zeroes...
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 0);
        assert_eq!(snap.gauges["b"], 0);
        assert_eq!(snap.histograms["c"].count, 0);
        // ...and so do the component-held handles (same cells).
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        // Post-reset increments are visible again.
        c.inc();
        assert_eq!(reg.counter("a"), Some(1));
    }

    #[test]
    fn registry_len_counts_all_kinds() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        reg.register_counter("a", Counter::new());
        reg.register_gauge("b", Gauge::new());
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }
}
