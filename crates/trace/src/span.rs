//! Trace data model: contexts, stages, tracks, spans, finished traces.

use clio_sim::{SimDuration, SimTime};

/// The lightweight per-op trace context that travels with a request from CN
/// submit to CN completion (and, inside request headers, across the wire at
/// zero modeled byte cost — it models metadata in reserved header bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Trace id, unique per sampled operation.
    pub id: u64,
    /// Attempt number: 0 for the original send, bumped by every retry.
    pub attempt: u32,
}

/// Which actor's timeline a span belongs to (one Perfetto track each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Track {
    /// Compute node `n` (CLib + transport).
    Cn(u32),
    /// The switch fabric between NICs.
    Wire,
    /// Memory node `n` (CBoard).
    Mn(u32),
}

impl Track {
    /// A stable display name ("cn0", "wire", "mn1").
    pub fn name(&self) -> String {
        match self {
            Track::Cn(i) => format!("cn{i}"),
            Track::Wire => "wire".to_string(),
            Track::Mn(i) => format!("mn{i}"),
        }
    }

    /// A stable Perfetto thread id for this track (pid is always 1).
    pub fn tid(&self) -> u64 {
        match self {
            Track::Cn(i) => 100 + *i as u64,
            Track::Wire => 50,
            Track::Mn(i) => 200 + *i as u64,
        }
    }
}

/// The typed stages an operation can spend time in, across every layer of
/// the fast path. Queueing stages (see [`Stage::is_queueing`]) are holds —
/// doorbells, backoffs, admission waits — as opposed to work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Held before CLib admission: the op had arrived (open-loop arrival or
    /// an `.await`ing task) but the runtime's in-flight budget was exhausted,
    /// so submission was parked until window credit freed.
    SubmitQueued,
    /// CLib software work from submit to transport hand-off, plus any wait
    /// on intra-thread dependency ordering.
    Submit,
    /// Held in the CN request doorbell queue (batch coalescing window).
    DoorbellHold,
    /// Request build + header packing software overhead at the CN.
    Pack,
    /// NIC serialization of the request frame (includes NIC tx queueing).
    NicSerialize,
    /// Switch-fabric propagation and store-and-forward hops.
    Wire,
    /// Per-frame MAC/PHY processing at MN ingress.
    IngressMac,
    /// Waiting for a free slot in the MN's bounded fast-path pipeline.
    PipelineWait,
    /// Header parse / request-decode pipeline stages at the MN.
    Parse,
    /// TLB lookup cycles.
    Tlb,
    /// Page-table walk DRAM accesses on a TLB miss.
    PtWalk,
    /// On-board interconnect crossings (FPGA ↔ memory controller).
    Interconnect,
    /// Data DRAM access (the op's actual payload reads/writes).
    Dram,
    /// DMA engine transfer between DRAM and the NIC buffers.
    Dma,
    /// Extend-path offload execution at the MN.
    Execute,
    /// Residual MN execution time not attributed to a finer stage (e.g.
    /// out-of-order fragment assembly, stall-retry re-execution).
    ExecuteTail,
    /// MN control-plane answer that bypasses execution (dedup replay,
    /// region refusal, fence accounting).
    Control,
    /// MN software slow path (ARM SoC crossing + handler).
    SlowPath,
    /// Held at the MN behind a fence barrier.
    FenceHold,
    /// Held in the MN egress doorbell queue (response coalescing window).
    EgressHold,
    /// CN-side completion delivery (transport match + CLib hand-back).
    Complete,
    /// From the failed attempt's last send until its NACK arrived back.
    NackTurnaround,
    /// From the failed attempt's last send until its retry timer fired.
    TimeoutWait,
    /// Held in the CN retry doorbell queue before retransmission.
    RetryDoorbell,
    /// Parked after a `Conflict` refusal until the backoff expired.
    ConflictBackoff,
    /// The op was cancelled (deadline exceeded) before completing; covers
    /// from the last stitched stage to the cancellation point.
    Cancelled,
}

impl Stage {
    /// True for stages that are queueing/holds rather than work; the fig14
    /// breakdown separates these so the work stages match the paper's rows.
    pub fn is_queueing(&self) -> bool {
        matches!(
            self,
            Stage::SubmitQueued
                | Stage::Submit
                | Stage::DoorbellHold
                | Stage::PipelineWait
                | Stage::FenceHold
                | Stage::EgressHold
                | Stage::NackTurnaround
                | Stage::TimeoutWait
                | Stage::RetryDoorbell
                | Stage::ConflictBackoff
                | Stage::Cancelled
        )
    }

    /// A stable display name for exports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::SubmitQueued => "submit_queued",
            Stage::Submit => "submit",
            Stage::DoorbellHold => "doorbell_hold",
            Stage::Pack => "pack",
            Stage::NicSerialize => "nic_serialize",
            Stage::Wire => "wire",
            Stage::IngressMac => "ingress_mac",
            Stage::PipelineWait => "pipeline_wait",
            Stage::Parse => "parse",
            Stage::Tlb => "tlb",
            Stage::PtWalk => "pt_walk",
            Stage::Interconnect => "interconnect",
            Stage::Dram => "dram",
            Stage::Dma => "dma",
            Stage::Execute => "execute",
            Stage::ExecuteTail => "execute_tail",
            Stage::Control => "control",
            Stage::SlowPath => "slow_path",
            Stage::FenceHold => "fence_hold",
            Stage::EgressHold => "egress_hold",
            Stage::Complete => "complete",
            Stage::NackTurnaround => "nack_turnaround",
            Stage::TimeoutWait => "timeout_wait",
            Stage::RetryDoorbell => "retry_doorbell",
            Stage::ConflictBackoff => "conflict_backoff",
            Stage::Cancelled => "cancelled",
        }
    }
}

/// One stitched stage span on an op's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Actor timeline the span renders on.
    pub track: Track,
    /// What the op was doing.
    pub stage: Stage,
    /// Span start (== the previous span's end: spans tile the timeline).
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Attempt this span belongs to.
    pub attempt: u32,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A retry edge inside one trace: attempt `from` failed and attempt `to`
/// replaced it (rendered as a Perfetto flow arrow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryLink {
    /// The failed attempt.
    pub from: u32,
    /// The replacement attempt.
    pub to: u32,
    /// When the retry was decided (NACK arrival / timeout firing).
    pub at: SimTime,
}

/// A complete (or in-flight) trace of one operation.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// Trace id ([`TraceCtx::id`]).
    pub id: u64,
    /// Op label ("read", "write", ...), for slice naming.
    pub label: &'static str,
    /// When the op was submitted.
    pub begin: SimTime,
    /// When the op completed (`None` while in flight).
    pub end: Option<SimTime>,
    /// Stitched stage spans, in timeline order.
    pub spans: Vec<Span>,
    /// Retry edges between attempts.
    pub links: Vec<RetryLink>,
    /// Timeline cursor: where the next span will start.
    pub cursor: SimTime,
    /// Current attempt number.
    pub attempt: u32,
}

impl OpTrace {
    /// Sum of all span durations (work + queueing).
    pub fn span_sum(&self) -> SimDuration {
        self.spans.iter().map(|s| s.duration()).fold(SimDuration::ZERO, |a, d| a + d)
    }

    /// End-to-end latency (panics if the trace is unfinished).
    pub fn e2e(&self) -> SimDuration {
        self.end.expect("trace not finished").since(self.begin)
    }

    /// Total duration attributed to `stage` across all attempts.
    pub fn stage_total(&self, stage: Stage) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.duration())
            .fold(SimDuration::ZERO, |a, d| a + d)
    }
}

/// Checks the structural invariants of one finished trace:
///
/// 1. the trace has an end and `begin <= end`;
/// 2. spans tile the `[begin, end]` interval exactly — the first span
///    starts at `begin`, each span starts where its predecessor ended, the
///    last span ends at `end`, and no span is empty or inverted;
/// 3. therefore `sum(span durations) == end − begin` **exactly** (sim time
///    is discrete);
/// 4. retry links connect consecutive attempts, in order.
///
/// Returns a description of the first violation.
pub fn check_trace(t: &OpTrace) -> Result<(), String> {
    let Some(end) = t.end else {
        return Err(format!("trace {}: not finished", t.id));
    };
    if end < t.begin {
        return Err(format!("trace {}: end {} before begin {}", t.id, end, t.begin));
    }
    let mut cursor = t.begin;
    for (i, s) in t.spans.iter().enumerate() {
        if s.start != cursor {
            return Err(format!(
                "trace {}: span {i} ({:?}) starts at {} but previous ended at {cursor} (gap/overlap)",
                t.id, s.stage, s.start
            ));
        }
        if s.end <= s.start {
            return Err(format!(
                "trace {}: span {i} ({:?}) empty or inverted: [{}, {}]",
                t.id, s.stage, s.start, s.end
            ));
        }
        cursor = s.end;
    }
    if cursor != end {
        return Err(format!("trace {}: spans end at {cursor}, op ended at {end}", t.id));
    }
    if t.span_sum() != end.since(t.begin) {
        return Err(format!(
            "trace {}: span sum {:?} != e2e {:?}",
            t.id,
            t.span_sum(),
            end.since(t.begin)
        ));
    }
    for (i, l) in t.links.iter().enumerate() {
        if l.to != l.from + 1 {
            return Err(format!(
                "trace {}: link {i} skips attempts ({} -> {})",
                t.id, l.from, l.to
            ));
        }
        if i as u32 != l.from {
            return Err(format!("trace {}: link {i} out of order (from {})", t.id, l.from));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn span(stage: Stage, a: u64, b: u64) -> Span {
        Span { track: Track::Cn(0), stage, start: t(a), end: t(b), attempt: 0 }
    }

    fn trace(spans: Vec<Span>, end: u64) -> OpTrace {
        OpTrace {
            id: 1,
            label: "read",
            begin: t(0),
            end: Some(t(end)),
            spans,
            links: vec![],
            cursor: t(end),
            attempt: 0,
        }
    }

    #[test]
    fn tiled_trace_passes() {
        let tr = trace(
            vec![
                span(Stage::Submit, 0, 10),
                span(Stage::Wire, 10, 40),
                span(Stage::Complete, 40, 50),
            ],
            50,
        );
        check_trace(&tr).expect("well-formed");
        assert_eq!(tr.span_sum(), SimDuration::from_nanos(50));
        assert_eq!(tr.e2e(), SimDuration::from_nanos(50));
        assert_eq!(tr.stage_total(Stage::Wire), SimDuration::from_nanos(30));
    }

    #[test]
    fn gap_is_rejected() {
        let tr = trace(vec![span(Stage::Submit, 0, 10), span(Stage::Wire, 20, 50)], 50);
        assert!(check_trace(&tr).unwrap_err().contains("gap/overlap"));
    }

    #[test]
    fn short_tail_is_rejected() {
        let tr = trace(vec![span(Stage::Submit, 0, 10)], 50);
        assert!(check_trace(&tr).unwrap_err().contains("spans end at"));
    }

    #[test]
    fn unfinished_is_rejected() {
        let mut tr = trace(vec![], 0);
        tr.end = None;
        assert!(check_trace(&tr).unwrap_err().contains("not finished"));
    }

    #[test]
    fn queueing_taxonomy() {
        assert!(Stage::SubmitQueued.is_queueing());
        assert_eq!(Stage::SubmitQueued.name(), "submit_queued");
        assert!(Stage::DoorbellHold.is_queueing());
        assert!(Stage::EgressHold.is_queueing());
        assert!(!Stage::Dram.is_queueing());
        assert!(!Stage::Wire.is_queueing());
        assert_eq!(Stage::PtWalk.name(), "pt_walk");
    }

    #[test]
    fn track_identities() {
        assert_eq!(Track::Cn(0).name(), "cn0");
        assert_eq!(Track::Mn(3).name(), "mn3");
        assert_eq!(Track::Wire.name(), "wire");
        let tids: Vec<u64> =
            [Track::Cn(0), Track::Wire, Track::Mn(0)].iter().map(|t| t.tid()).collect();
        assert_eq!(tids.len(), 3);
        assert!(tids.windows(2).all(|w| w[0] != w[1]));
    }
}
