//! # clio-trace — cross-layer operation tracing and unified metrics
//!
//! Observability substrate for the Clio reproduction (paper Figure 14's
//! per-stage latency breakdown, generalized). Three pieces:
//!
//! * **Stage spans**: every traced operation carries a
//!   [`TraceCtx`] from CN submit to CN completion; each layer *stitches*
//!   typed [`Stage`] spans onto the op's single timeline through a
//!   [`Tracer`]. Stitching tiles the timeline exactly — span `i+1` starts
//!   where span `i` ended — so the sum of stage durations provably equals
//!   the op's end-to-end latency ([`check_trace`] verifies this on every
//!   trace).
//! * **Metrics registry** ([`metrics`]): shared-handle counters, gauges and
//!   histograms with one snapshot/reset surface, replacing per-component
//!   ad-hoc stats structs.
//! * **Perfetto export** ([`export`]): any set of finished traces renders
//!   as Chrome trace-event JSON loadable in `ui.perfetto.dev` — one track
//!   per actor, one slice per stage, retries linked as flows.
//!
//! Tracing is sampling-aware ([`Tracer::enabled`] takes a 1-in-N rate) and
//! free when disabled: a disabled [`Tracer`] is a `None` and every call is
//! an early-returning no-op; trace contexts never serialize to modeled
//! wire bytes.

pub mod export;
pub mod metrics;
mod span;
mod tracer;

pub use span::{check_trace, OpTrace, RetryLink, Span, Stage, TraceCtx, Track};
pub use tracer::{TraceEvent, Tracer};
