//! The [`Tracer`] handle: begin / stitch / retry / finish.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use clio_sim::SimTime;

use crate::span::{OpTrace, RetryLink, Span, Stage, TraceCtx, Track};

/// A point-in-time system event on a track (e.g. a circuit breaker
/// observing a board going down or coming back), exported as a Chrome
/// trace instant event. Unlike spans, events belong to no op and are
/// never sampled away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The track the event marks.
    pub track: Track,
    /// Event name ("board_down", "board_up", ...).
    pub name: &'static str,
    /// When it happened.
    pub at: SimTime,
}

#[derive(Debug, Default)]
struct TraceSink {
    next_id: u64,
    sample_every: u64,
    seen: u64,
    active: HashMap<u64, OpTrace>,
    finished: Vec<OpTrace>,
    events: Vec<TraceEvent>,
}

/// A cloneable handle every traced component holds. Disabled (the default)
/// it is a `None` and every method is a no-op; enabled, all clones share
/// one sink, so CN-side and MN-side stitches land on the same per-op
/// timeline.
///
/// # Stitching
///
/// A trace is one timeline tiled by spans. `stitch(ctx, track, stage, end)`
/// appends the span `[cursor, max(cursor, end)]` and advances the cursor to
/// its end; zero-width spans are skipped entirely. Layers therefore only
/// name the *end* of each stage — contiguity (and thus the span-sum ==
/// end-to-end invariant checked by [`check_trace`](crate::check_trace)) is
/// structural, not something call sites can get wrong.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Rc<RefCell<TraceSink>>>);

impl Tracer {
    /// A disabled tracer: every call is a cheap no-op.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// An enabled tracer sampling one in `sample_every` operations
    /// (`1` = trace everything; `0` is clamped to 1).
    pub fn enabled(sample_every: u64) -> Self {
        Tracer(Some(Rc::new(RefCell::new(TraceSink {
            next_id: 1,
            sample_every: sample_every.max(1),
            seen: 0,
            active: HashMap::new(),
            finished: Vec::new(),
            events: Vec::new(),
        }))))
    }

    /// True when this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Starts a trace for an op submitted at `at`. Returns `None` when
    /// disabled or when sampling skips this op; the context otherwise
    /// travels with the op through every layer.
    pub fn begin(&self, label: &'static str, at: SimTime) -> Option<TraceCtx> {
        let sink = self.0.as_ref()?;
        let mut s = sink.borrow_mut();
        s.seen += 1;
        if (s.seen - 1) % s.sample_every != 0 {
            return None;
        }
        let id = s.next_id;
        s.next_id += 1;
        s.active.insert(
            id,
            OpTrace {
                id,
                label,
                begin: at,
                end: None,
                spans: Vec::new(),
                links: Vec::new(),
                cursor: at,
                attempt: 0,
            },
        );
        Some(TraceCtx { id, attempt: 0 })
    }

    /// Appends the stage span `[cursor, max(cursor, end)]` on `track` and
    /// advances the cursor; zero-width spans are skipped. No-op when
    /// disabled, unsampled, or the trace is unknown/finished.
    pub fn stitch(&self, ctx: Option<TraceCtx>, track: Track, stage: Stage, end: SimTime) {
        let (Some(sink), Some(ctx)) = (self.0.as_ref(), ctx) else { return };
        let mut s = sink.borrow_mut();
        let Some(t) = s.active.get_mut(&ctx.id) else { return };
        let end = end.max(t.cursor);
        if end > t.cursor {
            t.spans.push(Span { track, stage, start: t.cursor, end, attempt: ctx.attempt });
            t.cursor = end;
        }
    }

    /// Records a retry: links the failed attempt to its replacement and
    /// returns the bumped context the retransmission should carry.
    pub fn retry(&self, ctx: Option<TraceCtx>, at: SimTime) -> Option<TraceCtx> {
        let ctx = ctx?;
        let next = TraceCtx { id: ctx.id, attempt: ctx.attempt + 1 };
        if let Some(sink) = self.0.as_ref() {
            let mut s = sink.borrow_mut();
            if let Some(t) = s.active.get_mut(&ctx.id) {
                t.links.push(RetryLink { from: ctx.attempt, to: next.attempt, at });
                t.attempt = next.attempt;
            }
        }
        Some(next)
    }

    /// Ends a trace at `at` (stitching a final CN [`Stage::Complete`] span
    /// over any remaining gap) and moves it to the finished set.
    pub fn finish(&self, ctx: Option<TraceCtx>, track: Track, at: SimTime) {
        self.stitch(ctx, track, Stage::Complete, at);
        let (Some(sink), Some(ctx)) = (self.0.as_ref(), ctx) else { return };
        let mut s = sink.borrow_mut();
        if let Some(mut t) = s.active.remove(&ctx.id) {
            t.end = Some(at.max(t.cursor));
            s.finished.push(t);
        }
    }

    /// Clones the finished traces (empty when disabled).
    pub fn finished(&self) -> Vec<OpTrace> {
        self.0.as_ref().map(|s| s.borrow().finished.clone()).unwrap_or_default()
    }

    /// Removes and returns the finished traces (empty when disabled).
    pub fn take_finished(&self) -> Vec<OpTrace> {
        self.0.as_ref().map(|s| std::mem::take(&mut s.borrow_mut().finished)).unwrap_or_default()
    }

    /// Traces begun but not yet finished.
    pub fn active_count(&self) -> usize {
        self.0.as_ref().map(|s| s.borrow().active.len()).unwrap_or(0)
    }

    /// Records a point-in-time system event on `track` (no-op when
    /// disabled). Events skip per-op sampling: a board going down is a
    /// system fact, not a latency sample.
    pub fn event(&self, track: Track, name: &'static str, at: SimTime) {
        if let Some(sink) = self.0.as_ref() {
            sink.borrow_mut().events.push(TraceEvent { track, name, at });
        }
    }

    /// Clones the recorded system events (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map(|s| s.borrow().events.clone()).unwrap_or_default()
    }

    /// Removes and returns the recorded system events (empty when
    /// disabled).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map(|s| std::mem::take(&mut s.borrow_mut().events)).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::check_trace;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        assert_eq!(tr.begin("read", t(0)), None);
        tr.stitch(None, Track::Cn(0), Stage::Submit, t(10));
        assert_eq!(tr.retry(None, t(5)), None);
        tr.finish(None, Track::Cn(0), t(10));
        assert!(tr.finished().is_empty());
        assert_eq!(tr.active_count(), 0);
    }

    #[test]
    fn stitch_tiles_and_skips_zero_width() {
        let tr = Tracer::enabled(1);
        let ctx = tr.begin("read", t(100)).expect("sampled");
        tr.stitch(ctx.into(), Track::Cn(0), Stage::Submit, t(110));
        tr.stitch(ctx.into(), Track::Cn(0), Stage::DoorbellHold, t(110)); // zero-width
        tr.stitch(ctx.into(), Track::Wire, Stage::Wire, t(150));
        tr.stitch(ctx.into(), Track::Mn(0), Stage::Dram, t(90)); // behind cursor
        tr.finish(ctx.into(), Track::Cn(0), t(200));
        let traces = tr.finished();
        assert_eq!(traces.len(), 1);
        let tr0 = &traces[0];
        check_trace(tr0).expect("well-formed");
        assert_eq!(tr0.spans.len(), 3, "zero-width spans skipped: {:?}", tr0.spans);
        assert_eq!(tr0.spans[2].stage, Stage::Complete);
        assert_eq!(tr0.e2e().as_nanos(), 100);
    }

    #[test]
    fn sampling_skips_ops() {
        let tr = Tracer::enabled(3);
        let sampled: Vec<bool> = (0..9).map(|i| tr.begin("x", t(i)).is_some()).collect();
        assert_eq!(sampled.iter().filter(|s| **s).count(), 3);
        assert!(sampled[0], "first op always sampled");
    }

    #[test]
    fn retry_links_attempts() {
        let tr = Tracer::enabled(1);
        let ctx = tr.begin("faa", t(0)).unwrap();
        tr.stitch(ctx.into(), Track::Cn(0), Stage::NicSerialize, t(10));
        let ctx2 = tr.retry(ctx.into(), t(60)).unwrap();
        assert_eq!(ctx2, TraceCtx { id: ctx.id, attempt: 1 });
        tr.stitch(ctx2.into(), Track::Cn(0), Stage::TimeoutWait, t(60));
        tr.finish(ctx2.into(), Track::Cn(0), t(80));
        let traces = tr.finished();
        assert_eq!(traces[0].links.len(), 1);
        assert_eq!((traces[0].links[0].from, traces[0].links[0].to), (0, 1));
        check_trace(&traces[0]).expect("well-formed");
        // Spans before the retry carry attempt 0; after, attempt 1.
        assert_eq!(traces[0].spans[0].attempt, 0);
        assert_eq!(traces[0].spans.last().unwrap().attempt, 1);
    }

    #[test]
    fn take_finished_drains() {
        let tr = Tracer::enabled(1);
        let ctx = tr.begin("read", t(0)).unwrap();
        tr.finish(ctx.into(), Track::Cn(0), t(5));
        assert_eq!(tr.take_finished().len(), 1);
        assert!(tr.finished().is_empty());
    }
}
