//! Chrome trace-event JSON export (loadable in `ui.perfetto.dev`) and a
//! dependency-free validator for the exported format.
//!
//! Layout: each simulated actor (cn0, wire, mn0, ...) becomes a Perfetto
//! *process*; each traced op becomes a *thread* lane inside the actors it
//! visited, so one op's stage slices read left-to-right across actor
//! groups. Because an op's spans tile a single timeline, the `B`/`E`
//! events inside any `(pid, tid)` lane are strictly sequential — balanced
//! and properly nested by construction. Retry links are exported as flow
//! (`s`/`f`) events so NACK/timeout recoveries render as arrows from the
//! failed attempt to its replacement.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use clio_sim::SimTime;

use crate::span::{OpTrace, Track};
use crate::tracer::TraceEvent;

/// Formats a sim instant as Chrome's microsecond timestamp (3 decimals).
fn ts_us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[allow(clippy::too_many_arguments)] // one JSON field per argument
fn push_event(
    out: &mut String,
    name: &str,
    cat: &str,
    ph: &str,
    ts: SimTime,
    pid: u64,
    tid: u64,
    extra: &str,
) {
    let _ = writeln!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{pid},\"tid\":{tid}{extra}}},",
        ts_us(ts)
    );
}

/// Renders finished traces as a Chrome trace-event JSON document.
///
/// The result validates under [`validate_chrome_trace`] and loads in
/// `ui.perfetto.dev` / `chrome://tracing`.
pub fn perfetto_json(traces: &[OpTrace]) -> String {
    perfetto_json_with_events(traces, &[])
}

/// Like [`perfetto_json`], additionally rendering point-in-time system
/// events (board down/up, breaker trips) as Chrome instant (`i`) events on
/// their track's lane 0.
pub fn perfetto_json_with_events(traces: &[OpTrace], events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    // Process metadata: one per actor track seen anywhere.
    let mut actors: BTreeMap<u64, Track> = BTreeMap::new();
    for t in traces {
        for s in &t.spans {
            actors.entry(s.track.tid()).or_insert(s.track);
        }
    }
    for e in events {
        actors.entry(e.track.tid()).or_insert(e.track);
    }
    for (pid, track) in &actors {
        let _ = writeln!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}},",
            track.name()
        );
    }
    for t in traces {
        // Thread metadata: this op's lane inside every actor it visited.
        let mut lanes: BTreeMap<u64, ()> = BTreeMap::new();
        for s in &t.spans {
            lanes.entry(s.track.tid()).or_insert(());
        }
        for pid in lanes.keys() {
            let _ = writeln!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"op {} {}\"}}}},",
                t.id, t.id, t.label
            );
        }
        for s in &t.spans {
            let cat = if s.stage.is_queueing() { "queueing" } else { "stage" };
            let args = format!(",\"args\":{{\"attempt\":{}}}", s.attempt);
            push_event(&mut out, s.stage.name(), cat, "B", s.start, s.track.tid(), t.id, &args);
            push_event(&mut out, s.stage.name(), cat, "E", s.end, s.track.tid(), t.id, "");
        }
        // Retry flows: failed attempt -> replacement, on the op's home lane.
        let home = t.spans.first().map(|s| s.track.tid()).unwrap_or(1);
        for l in &t.links {
            let extra = format!(",\"id\":{}", t.id * 1000 + l.from as u64);
            push_event(&mut out, "retry", "retry", "s", l.at, home, t.id, &extra);
            push_event(&mut out, "retry", "retry", "f", l.at, home, t.id, &extra);
        }
    }
    // System events: instants pinned to lane 0 of their actor's process.
    for e in events {
        push_event(&mut out, e.name, "system", "i", e.at, e.track.tid(), 0, ",\"s\":\"p\"");
    }
    // Strip the trailing ",\n" and close.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON model + parser (no external dependencies).
// ---------------------------------------------------------------------------

/// A minimal parsed-JSON value, just rich enough to validate trace files.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&c) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err("bad escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' | b'f' => s.push(' '),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => s.push(c as char),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document (minimal grammar, sufficient for trace files).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Counts gathered while validating an exported trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// `B` (slice begin) events.
    pub begins: u64,
    /// `E` (slice end) events.
    pub ends: u64,
    /// Metadata (`M`) events.
    pub metadata: u64,
    /// Flow (`s`/`f`) events.
    pub flows: u64,
    /// Instant (`i`) events — point-in-time system marks.
    pub instants: u64,
    /// Distinct `(pid, tid)` lanes carrying slices.
    pub lanes: u64,
}

/// Validates a Chrome trace-event JSON document:
///
/// * well-formed JSON with a non-empty `traceEvents` array;
/// * every event has `name`, `ph`, `pid`, `tid` (and `ts` for non-`M`);
/// * per `(pid, tid)` lane, `B`/`E` events (in timestamp order) balance as
///   a stack — names match, no `E` without a `B`, nothing left open;
/// * flow events pair up: every flow step has a start and an end.
///
/// Returns event counts for the caller's own assertions.
pub fn validate_chrome_trace(doc: &str) -> Result<ExportStats, String> {
    let root = parse_json(doc)?;
    let events = root.get("traceEvents").ok_or("missing traceEvents key")?.clone();
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }

    let mut stats = ExportStats::default();
    // (pid, tid) -> [(name, ts)] open-slice stack; events arrive in file
    // order, which the exporter keeps time-sorted per lane.
    let mut stacks: BTreeMap<(u64, u64), Vec<(String, f64)>> = BTreeMap::new();
    let mut flow_balance: i64 = 0;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?
            .to_string();
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let pid =
            ev.get("pid").and_then(Json::as_num).ok_or_else(|| format!("event {i}: missing pid"))?
                as u64;
        let tid =
            ev.get("tid").and_then(Json::as_num).ok_or_else(|| format!("event {i}: missing tid"))?
                as u64;
        if ph == "M" {
            stats.metadata += 1;
            continue;
        }
        let ts =
            ev.get("ts").and_then(Json::as_num).ok_or_else(|| format!("event {i}: missing ts"))?;
        match ph.as_str() {
            "B" => {
                stats.begins += 1;
                let stack = stacks.entry((pid, tid)).or_default();
                if let Some((_, open_ts)) = stack.last() {
                    if ts < *open_ts {
                        return Err(format!(
                            "event {i}: B at {ts} before enclosing B at {open_ts}"
                        ));
                    }
                }
                stack.push((name, ts));
            }
            "E" => {
                stats.ends += 1;
                let stack = stacks.entry((pid, tid)).or_default();
                let Some((open_name, open_ts)) = stack.pop() else {
                    return Err(format!("event {i}: E '{name}' with no open B on ({pid},{tid})"));
                };
                if open_name != name {
                    return Err(format!(
                        "event {i}: E '{name}' closes B '{open_name}' on ({pid},{tid})"
                    ));
                }
                if ts < open_ts {
                    return Err(format!("event {i}: E at {ts} before its B at {open_ts}"));
                }
            }
            "s" => {
                stats.flows += 1;
                flow_balance += 1;
            }
            "f" => {
                stats.flows += 1;
                flow_balance -= 1;
            }
            "i" => stats.instants += 1,
            other => return Err(format!("event {i}: unexpected ph '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("unbalanced: B '{name}' never closed on ({pid},{tid})"));
        }
    }
    if flow_balance != 0 {
        return Err(format!("unbalanced flow events (s - f = {flow_balance})"));
    }
    stats.lanes = stacks.len() as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;
    use crate::Tracer;
    use clio_sim::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_traces() -> Vec<OpTrace> {
        let tr = Tracer::enabled(1);
        let a = tr.begin("read", t(0)).unwrap();
        tr.stitch(a.into(), Track::Cn(0), Stage::Submit, t(10));
        tr.stitch(a.into(), Track::Wire, Stage::Wire, t(40));
        tr.stitch(a.into(), Track::Mn(0), Stage::Dram, t(90));
        let b = tr.begin("faa", t(5)).unwrap();
        tr.stitch(b.into(), Track::Cn(0), Stage::Submit, t(20));
        tr.stitch(b.into(), Track::Cn(0), Stage::NicSerialize, t(30));
        let b2 = tr.retry(b.into(), t(80)).unwrap();
        tr.stitch(b2.into(), Track::Cn(0), Stage::TimeoutWait, t(80));
        tr.finish(a.into(), Track::Cn(0), t(120));
        tr.finish(b2.into(), Track::Cn(0), t(140));
        tr.finished()
    }

    #[test]
    fn export_validates() {
        let json = perfetto_json(&sample_traces());
        let stats = validate_chrome_trace(&json).expect("valid trace json");
        assert!(stats.begins >= 6);
        assert_eq!(stats.begins, stats.ends);
        assert_eq!(stats.flows, 2, "one retry link = one s + one f");
        assert!(stats.metadata >= 4, "process + thread names");
        assert!(stats.lanes >= 3, "two ops across three actors");
    }

    #[test]
    fn system_events_export_as_instants() {
        let events = vec![
            TraceEvent { track: Track::Cn(0), name: "board_down", at: t(50) },
            TraceEvent { track: Track::Cn(0), name: "board_up", at: t(900) },
        ];
        let json = perfetto_json_with_events(&sample_traces(), &events);
        let stats = validate_chrome_trace(&json).expect("valid trace json");
        assert_eq!(stats.instants, 2, "each system event exports as one instant");
        assert_eq!(stats.begins, stats.ends);
    }

    #[test]
    fn ts_formats_as_fractional_micros() {
        assert_eq!(ts_us(t(1500)), "1.500");
        assert_eq!(ts_us(t(999)), "0.999");
        assert_eq!(ts_us(t(2_000_000)), "2000.000");
    }

    #[test]
    fn parser_roundtrips_basics() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(parse_json("{").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[]}"#).is_err());
        // E without B.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("no open B"));
        // Unclosed B.
        let open = r#"{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(open).unwrap_err().contains("never closed"));
        // Mismatched close.
        let cross = r#"{"traceEvents":[
            {"name":"x","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"y","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(cross).unwrap_err().contains("closes B"));
    }
}
