//! The bounded explorer: exhaustive search over network-event schedules.
//!
//! # The model
//!
//! The scenario ([`Scenario`]) is deterministic except for the network:
//! every frame in flight sits captured on the
//! [`VirtualWire`](clio_net::VirtualWire) until the
//! explorer decides its fate. A **schedule** is a sequence of
//! [`McAction`]s; between actions the simulation **settles** — it runs
//! every event whose gap from the previous one is within the settle
//! horizon, so doorbells, NIC serialization and pipeline cascades play out
//! — and stops at the next *decision point* (the next event is a timeout
//! far in the future, or nothing is pending at all). Depth-first search
//! enumerates every schedule up to [`McConfig::max_depth`] actions and
//! [`McConfig::fault_budget`] injected faults.
//!
//! Fault accounting: in-order delivery is the network behaving, so it is
//! free; a delivery that overtakes an older same-destination frame is a
//! reorder and costs one fault, as do corruption, drop and duplication.
//! Firing a timer (jumping the simulation to its next far-future event,
//! e.g. a retransmission timeout) is free but consumes depth.
//!
//! # Invariants checked
//!
//! After every settle: the transport's window-accounting invariants
//! ([`clio_cn::transport`]'s `# Invariants` 1) and request-id freshness
//! (invariant 2, checked over every request frame the CN ever puts on the
//! wire). At quiescence: every submitted op completed exactly once with
//! the same result as the fault-free unbatched baseline, final memory
//! matches the baseline (at-most-once effects — the fetch-and-add landed
//! exactly once), and all windows drained (invariant 4). A state with
//! requests in flight but nothing pending anywhere is reported as a
//! deadlock.
//!
//! # Pruning
//!
//! States are fingerprinted over **logical** protocol state only
//! (transport + board fingerprints, wire contents, completions) — absolute
//! times and EWMAs are excluded, so runs that differ only in when things
//! happened collapse into one state. A state is re-explored only if
//! reached with strictly more depth or fault budget remaining than every
//! earlier visit.

use std::collections::{HashMap, HashSet};
use std::fmt;

use clio_cn::transport::McMutation;
use clio_net::Frame;
use clio_proto::ClioPacket;
use clio_sim::{Message, SimDuration};

use crate::harness::{Framing, Outcome, Scenario};

/// One explorer decision about the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McAction {
    /// Deliver pending frame `index` to its destination. Free if it is the
    /// oldest frame for that destination; costs one fault if it overtakes
    /// an older one (a reorder).
    Deliver(usize),
    /// Corrupt pending frame `index` and deliver it (one fault). The
    /// receiver's link layer sees a failed integrity check: the board
    /// NACKs it, the CN drops it.
    Corrupt(usize),
    /// Discard pending frame `index` without delivery (one fault). The
    /// sender's timeout machinery must recover.
    Drop(usize),
    /// Inject a copy of pending frame `index` behind it (one fault); the
    /// original stays in flight. Retry-dedup must suppress the double
    /// execution.
    Duplicate(usize),
    /// Run the next pending simulation event past the settle horizon —
    /// typically a retransmission timeout. Free, but consumes depth.
    FireTimer,
    /// Power-blip the board (crash + immediate restart): its volatile
    /// state — dedup buffer, egress queues, pending doorbells — is lost,
    /// while committed DRAM and page tables survive. Costs one unit of
    /// [`McConfig::crash_budget`]; with the dedup buffer cold, a retry of
    /// an already-executed non-idempotent op re-executes, so crash runs
    /// are checked against a relaxed at-least-once outcome instead of
    /// strict baseline equality.
    CrashBoard,
}

impl fmt::Display for McAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McAction::Deliver(i) => write!(f, "Deliver({i})"),
            McAction::Corrupt(i) => write!(f, "Corrupt({i})"),
            McAction::Drop(i) => write!(f, "Drop({i})"),
            McAction::Duplicate(i) => write!(f, "Duplicate({i})"),
            McAction::FireTimer => write!(f, "FireTimer"),
            McAction::CrashBoard => write!(f, "CrashBoard"),
        }
    }
}

/// Exploration bounds and scenario knobs.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Maximum schedule length (actions per run).
    pub max_depth: usize,
    /// Maximum injected faults per run (reorders + corruptions + drops +
    /// duplications).
    pub fault_budget: u32,
    /// Maximum board power-blips ([`McAction::CrashBoard`]) per run.
    /// Separate from `fault_budget` because a crash changes the *spec*
    /// being checked: runs that used a crash are held to at-least-once
    /// semantics for the fetch-and-add (the dedup buffer is volatile by
    /// design), not strict baseline equality. Zero (the default) keeps
    /// the search identical to the crash-free checker.
    pub crash_budget: u32,
    /// Planted transport mutation ([`McMutation::None`] for the real
    /// code).
    pub mutation: McMutation,
    /// The CN's retry budget. Keep it above `max_depth` when searching the
    /// unmutated transport: every `FireTimer` can burn one retry, and a
    /// legitimately-exhausted retry budget fails the op, which the
    /// equivalence check would (correctly, but uninterestingly) flag.
    pub max_retries: u32,
    /// Settle horizon: events closer together than this are internal
    /// cascade, a larger gap is a decision point. Must sit between the
    /// doorbell caps (~4 µs) and the request timeout (50 µs).
    pub settle_horizon: SimDuration,
    /// Hard cap on explored nodes (a safety valve, not a tuning knob; the
    /// run reports whether it was hit).
    pub max_nodes: u64,
    /// Memory boards in the scenario. One (the default) runs the classic
    /// read + fetch-and-add pair against a single board; two or more run
    /// one read per board, so the search covers per-destination windows,
    /// retries, and dedup with frames to several boards interleaving on
    /// the shared wire.
    pub mns: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            // Depth 9 is the shortest bound that rediscovers the
            // retry-chain dedup bug this checker caught during development
            // (see `crates/cn/tests/mc_regressions.rs`): ~90 s in release,
            // ~1.1 M distinct states.
            max_depth: 9,
            fault_budget: 2,
            crash_budget: 0,
            mutation: McMutation::None,
            max_retries: 16,
            settle_horizon: SimDuration::from_micros(20),
            max_nodes: 5_000_000,
            mns: 1,
        }
    }
}

/// A schedule that violated an invariant, with everything needed to
/// reproduce and understand it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// The exact schedule that reaches the violation — replay it with
    /// [`replay`].
    pub schedule: Vec<McAction>,
    /// Human-readable narration of each step (which frame, what it
    /// carried, where it went).
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violation: {}", self.message)?;
        writeln!(f, "schedule ({} actions):", self.schedule.len())?;
        for (i, line) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:>2}. {line}")?;
        }
        write!(f, "replay with: &{:?}", self.schedule)
    }
}

/// Results of a bounded exploration.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Distinct logical states visited (after pruning).
    pub distinct_states: usize,
    /// Search-tree nodes expanded (prefix replays executed).
    pub nodes: u64,
    /// Runs that reached quiescence and passed the final equivalence
    /// checks.
    pub quiescent_runs: u64,
    /// The first invariant violation found, if any.
    pub violation: Option<Violation>,
    /// True if the search stopped at [`McConfig::max_nodes`] instead of
    /// exhausting the bounded space.
    pub truncated: bool,
}

/// One partially- or fully-executed schedule: the live simulation plus the
/// bookkeeping the invariant checks need.
struct Run {
    scenario: Scenario,
    horizon: SimDuration,
    /// Request ids observed on the wire, for the freshness invariant.
    seen_req_ids: HashSet<u64>,
    /// Capture seqs of explorer-injected duplicates (exempt from the
    /// freshness check: the network may repeat ids, the transport may
    /// not).
    synthetic: HashSet<u64>,
    /// Freshness-scan watermark: frames with `seq` below this were
    /// scanned.
    scanned_up_to: u64,
    /// Board power-blips applied so far (selects the relaxed at-least-once
    /// outcome check at quiescence).
    crashes: u32,
    /// Narration of the applied actions.
    trace: Vec<String>,
}

impl Run {
    /// Builds the scenario and settles to the first decision point.
    fn start(cfg: &McConfig) -> Result<Run, String> {
        let scenario = Scenario::new_with(Framing::Batched, cfg.mutation, cfg.max_retries, cfg.mns);
        let mut run = Run {
            scenario,
            horizon: cfg.settle_horizon,
            seen_req_ids: HashSet::new(),
            synthetic: HashSet::new(),
            scanned_up_to: 0,
            crashes: 0,
            trace: Vec::new(),
        };
        run.settle_and_check()?;
        Ok(run)
    }

    /// Applies one action, settles, and checks the per-state invariants.
    /// `Err` carries the violation message.
    fn apply(&mut self, action: McAction) -> Result<(), String> {
        match action {
            McAction::Deliver(i) => {
                self.trace.push(format!("Deliver({i}): {}", self.describe(i)));
                self.scenario.deliver(i);
            }
            McAction::Corrupt(i) => {
                self.trace.push(format!("Corrupt({i}): {}", self.describe(i)));
                self.scenario.wire_mut().corrupt(i);
                self.scenario.deliver(i);
            }
            McAction::Drop(i) => {
                self.trace.push(format!("Drop({i}): {}", self.describe(i)));
                self.scenario.wire_mut().take(i);
            }
            McAction::Duplicate(i) => {
                self.trace.push(format!("Duplicate({i}): {}", self.describe(i)));
                let wire = self.scenario.wire();
                let src_frame = &wire.pending()[i].frame;
                let pkt = src_frame
                    .payload
                    .downcast_ref::<ClioPacket>()
                    .expect("wire carries ClioPackets")
                    .clone();
                let mut copy = Frame::new(
                    src_frame.src,
                    src_frame.dst,
                    src_frame.wire_bytes,
                    Message::new(pkt),
                );
                copy.corrupted = src_frame.corrupted;
                let seq = self.scenario.wire_mut().inject(copy);
                self.synthetic.insert(seq);
            }
            McAction::FireTimer => {
                self.trace.push("FireTimer: run next event past the horizon".into());
                self.scenario.sim.step();
            }
            McAction::CrashBoard => {
                self.trace.push("CrashBoard: power-blip the board (volatile state lost)".into());
                self.crashes += 1;
                self.scenario.power_blip();
            }
        }
        self.settle_and_check()
    }

    /// Runs every event within the (sliding) settle horizon, then checks
    /// the per-state invariants.
    fn settle_and_check(&mut self) -> Result<(), String> {
        while let Some(at) = self.scenario.sim.peek_next_event_time() {
            if at > self.scenario.sim.now() + self.horizon {
                break;
            }
            self.scenario.sim.step();
        }
        self.scenario.host().clib().transport().check_invariants()?;
        self.scan_freshness()
    }

    /// Scans newly captured frames for transport-issued request-id reuse.
    fn scan_freshness(&mut self) -> Result<(), String> {
        let wire = self.scenario.sim.actor::<clio_net::VirtualWire>(self.scenario.wire);
        let mut fresh: Vec<u64> = Vec::new();
        for c in wire.pending() {
            if c.seq < self.scanned_up_to || self.synthetic.contains(&c.seq) {
                continue;
            }
            let Some(pkt) = c.frame.payload.downcast_ref::<ClioPacket>() else { continue };
            match pkt {
                ClioPacket::Request { header, .. } => fresh.push(header.req_id.0),
                ClioPacket::Batch { requests } => {
                    fresh.extend(requests.iter().map(|(h, _)| h.req_id.0));
                }
                _ => {}
            }
        }
        self.scanned_up_to = wire.captured();
        for id in fresh {
            if !self.seen_req_ids.insert(id) {
                return Err(format!(
                    "request-id freshness violated: the transport put request id {id} on the \
                     wire twice (retries must use fresh ids)"
                ));
            }
        }
        Ok(())
    }

    /// One-line description of pending frame `index`.
    fn describe(&self, index: usize) -> String {
        let c = &self.scenario.wire().pending()[index];
        let dir = format!("{:?}->{:?}", c.frame.src, c.frame.dst);
        let what = match c.frame.payload.downcast_ref::<ClioPacket>() {
            Some(ClioPacket::Request { header, .. }) => {
                format!("Request[req {}]", header.req_id.0)
            }
            Some(ClioPacket::Batch { requests }) => format!(
                "Batch[{}]",
                requests.iter().map(|(h, _)| h.req_id.0.to_string()).collect::<Vec<_>>().join(",")
            ),
            Some(ClioPacket::Response { header, .. }) => {
                format!("Response[req {}]", header.req_id.0)
            }
            Some(ClioPacket::BatchResp { responses }) => format!(
                "BatchResp[{}]",
                responses.iter().map(|(h, _)| h.req_id.0.to_string()).collect::<Vec<_>>().join(",")
            ),
            Some(ClioPacket::Nack { req_id }) => format!("Nack[req {}]", req_id.0),
            Some(ClioPacket::BatchNack { req_ids }) => format!(
                "BatchNack[{}]",
                req_ids.iter().map(|r| r.0.to_string()).collect::<Vec<_>>().join(",")
            ),
            None => "<non-Clio frame>".into(),
        };
        let corrupted = if c.frame.corrupted { " (corrupted)" } else { "" };
        format!("{what} {dir}{corrupted}")
    }

    /// Fingerprint of the logical state: transport + board + wire +
    /// completions. Absolute times are excluded (see the module docs on
    /// pruning).
    fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        // Crash count is part of the logical state: a post-blip state with
        // a cold dedup buffer is checked against a different (relaxed)
        // quiescent spec than its crash-free twin, so they must not prune
        // into one node.
        h = mix(h, self.crashes as u64);
        h = mix(h, self.scenario.host().clib().transport().fingerprint());
        h = mix(h, self.scenario.host().clib().in_flight() as u64);
        for fp in self.scenario.board_fingerprints() {
            h = mix(h, fp);
        }
        for c in self.scenario.wire().pending() {
            h = mix(h, c.frame.src.0 as u64);
            h = mix(h, c.frame.dst.0 as u64);
            h = mix(h, c.frame.corrupted as u64);
            // ClioPacket has no Hash impl; its Debug form is a faithful,
            // deterministic rendering of the packet content, so hash that.
            match c.frame.payload.downcast_ref::<ClioPacket>() {
                Some(pkt) => h = mix_str(h, &format!("{pkt:?}")),
                None => h = mix(h, u64::MAX),
            }
        }
        for comp in self.scenario.host().completions() {
            h = mix(h, comp.token.0);
            h = mix_str(h, &format!("{:?}", comp.result));
        }
        h
    }

    /// Final checks at quiescence: completion-count, observational
    /// equivalence with the baseline, and drained windows.
    fn check_quiescent(&mut self, baseline: &Outcome) -> Result<(), String> {
        let transport = self.scenario.host().clib().transport();
        transport.check_invariants()?;
        if transport.incast_in_flight() != 0 {
            return Err(format!(
                "quiescence violated: incast window still holds {} bytes with nothing in flight",
                transport.incast_in_flight()
            ));
        }
        let got = self.scenario.outcome();
        if got.results.len() != baseline.results.len() {
            return Err(format!(
                "completion-count mismatch at quiescence: {} ops completed, baseline \
                 completed {}",
                got.results.len(),
                baseline.results.len()
            ));
        }
        if self.crashes == 0 {
            if got != *baseline {
                return Err(format!(
                    "observational equivalence violated: explored run produced {got:?}, the \
                     fault-free unbatched baseline produced {baseline:?}"
                ));
            }
            return Ok(());
        }
        self.check_quiescent_after_crashes(baseline, &got)
    }

    /// The quiescent spec for runs that power-blipped the board: single
    /// completion per op and read-side equality still hold verbatim, but
    /// the fetch-and-add degrades from exactly-once to **at-least-once,
    /// at-most-`crashes + 1`-times** — each blip clears the volatile dedup
    /// buffer, so one retry of an already-executed FAA may re-execute per
    /// crash. The value the application observed must be one the cell
    /// actually passed through.
    fn check_quiescent_after_crashes(
        &self,
        baseline: &Outcome,
        got: &Outcome,
    ) -> Result<(), String> {
        use crate::harness::{FAA_DELTA, FAA_SEED};
        for (i, (g, b)) in got.read_pages.iter().zip(baseline.read_pages.iter()).enumerate() {
            if g != b {
                return Err(format!(
                    "crash run corrupted board {i}'s read page: got {g:?}, baseline {b:?} — \
                     committed DRAM must survive a board restart"
                ));
            }
        }
        let (Some(got_cell), Some(_)) = (got.faa_cell, baseline.faa_cell) else {
            // Multi-MN scenarios are read-only: every op is idempotent, so
            // even crash runs must match the baseline verbatim.
            if *got != *baseline {
                return Err(format!(
                    "crash run of the read-only scenario diverged from the baseline: got \
                     {got:?}, baseline {baseline:?}"
                ));
            }
            return Ok(());
        };
        // Token order (= submission order): [0] the read, [1] the FAA.
        if got.results[0] != baseline.results[0] {
            return Err(format!(
                "crash run changed the read's completion: got {:?}, baseline {:?}",
                got.results[0], baseline.results[0]
            ));
        }
        let executions = match &got.results[1].1 {
            Ok(clio_cn::CompletionValue::Old(v))
                if *v >= FAA_SEED && (*v - FAA_SEED).is_multiple_of(FAA_DELTA) =>
            {
                (*v - FAA_SEED) / FAA_DELTA
            }
            other => {
                return Err(format!(
                    "crash run's FAA completed with {other:?}, expected Ok(Old(seed + \
                     k*delta)) for some prior execution count k"
                ));
            }
        };
        if executions > self.crashes as u64 {
            return Err(format!(
                "FAA old-value implies {executions} prior executions but only {} crash(es) \
                 could have cleared the dedup buffer",
                self.crashes
            ));
        }
        let cell = got_cell;
        let over_seed = cell
            .checked_sub(FAA_SEED)
            .ok_or_else(|| format!("FAA cell regressed below its seed: {cell} < {FAA_SEED}"))?;
        if over_seed == 0 || !over_seed.is_multiple_of(FAA_DELTA) {
            return Err(format!(
                "FAA cell holds {cell}: the completed op must have applied the delta a whole \
                 number of times, at least once"
            ));
        }
        let applied = over_seed / FAA_DELTA;
        if applied > (self.crashes + 1) as u64 {
            return Err(format!(
                "FAA applied {applied} times but {} crash(es) permit at most {} — dedup \
                 failed beyond what volatility explains",
                self.crashes,
                self.crashes + 1
            ));
        }
        Ok(())
    }
}

/// FNV-1a step over one `u64`.
fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a over a string's bytes.
fn mix_str(mut h: u64, s: &str) -> u64 {
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the fault-free, unbatched baseline to completion and returns its
/// outcome — the reference every explored schedule must be observationally
/// equivalent to.
pub fn baseline_outcome(cfg: &McConfig) -> Outcome {
    let mut sc = Scenario::new_with(Framing::Unbatched, McMutation::None, cfg.max_retries, cfg.mns);
    loop {
        // Settle, then deliver everything in capture order; fire timers
        // only if somehow needed (a fault-free run should never time out).
        while let Some(at) = sc.sim.peek_next_event_time() {
            if at > sc.sim.now() + cfg.settle_horizon {
                break;
            }
            sc.sim.step();
        }
        if !sc.wire().is_empty() {
            sc.deliver(0);
            continue;
        }
        if sc.sim.peek_next_event_time().is_some() {
            sc.sim.step();
            continue;
        }
        break;
    }
    assert!(
        sc.host().clib().in_flight() == 0,
        "baseline run must complete every op (got {} still in flight)",
        sc.host().clib().in_flight()
    );
    sc.outcome()
}

/// Replays `schedule` from the initial state, checking every invariant
/// along the way, and — if the run reaches quiescence — the final
/// equivalence checks against the baseline. `Ok(())` means the schedule
/// completes without violation (it need not reach quiescence).
pub fn replay(cfg: &McConfig, schedule: &[McAction]) -> Result<(), Violation> {
    let baseline = baseline_outcome(cfg);
    let violation = |run: &Run, message: String, schedule: &[McAction]| Violation {
        message,
        schedule: schedule.to_vec(),
        trace: run.trace.clone(),
    };
    let mut run = match Run::start(cfg) {
        Ok(r) => r,
        Err(msg) => {
            return Err(Violation { message: msg, schedule: vec![], trace: vec![] });
        }
    };
    for (i, &a) in schedule.iter().enumerate() {
        if let Err(msg) = run.apply(a) {
            return Err(violation(&run, msg, &schedule[..=i]));
        }
    }
    if run.scenario.quiescent() {
        if let Err(msg) = run.check_quiescent(&baseline) {
            return Err(violation(&run, msg, schedule));
        }
    }
    Ok(())
}

/// Search bookkeeping shared across the recursion.
struct Search<'a> {
    cfg: &'a McConfig,
    baseline: Outcome,
    /// state hash → (fewest actions used, fewest faults used) over all
    /// visits.
    visited: HashMap<u64, (usize, u32)>,
    nodes: u64,
    quiescent_runs: u64,
    truncated: bool,
}

/// Explores every schedule within the configured bounds. Returns the
/// search statistics and the first violation found (the search stops at
/// it).
pub fn explore(cfg: &McConfig) -> McReport {
    let mut search = Search {
        cfg,
        baseline: baseline_outcome(cfg),
        visited: HashMap::new(),
        nodes: 0,
        quiescent_runs: 0,
        truncated: false,
    };
    let mut schedule = Vec::new();
    let violation = dfs(&mut search, &mut schedule, 0, 0);
    McReport {
        distinct_states: search.visited.len(),
        nodes: search.nodes,
        quiescent_runs: search.quiescent_runs,
        violation,
        truncated: search.truncated,
    }
}

/// Expands the node reached by `schedule` (replaying it from scratch —
/// the simulation is not cloneable, and replays are cheap at these
/// depths), then recurses into every affordable action.
fn dfs(
    search: &mut Search<'_>,
    schedule: &mut Vec<McAction>,
    faults_used: u32,
    crashes_used: u32,
) -> Option<Violation> {
    if search.nodes >= search.cfg.max_nodes {
        search.truncated = true;
        return None;
    }
    search.nodes += 1;
    let mut run = match Run::start(search.cfg) {
        Ok(r) => r,
        Err(msg) => {
            return Some(Violation { message: msg, schedule: schedule.clone(), trace: vec![] })
        }
    };
    for (i, &a) in schedule.iter().enumerate() {
        if let Err(msg) = run.apply(a) {
            return Some(Violation {
                message: msg,
                schedule: schedule[..=i].to_vec(),
                trace: run.trace.clone(),
            });
        }
    }

    // Prune: skip unless this visit has strictly more depth or fault
    // budget remaining than every earlier visit of the same state.
    let h = run.state_hash();
    let depth = schedule.len();
    if let Some(&(d, f)) = search.visited.get(&h) {
        if depth >= d && faults_used >= f {
            return None;
        }
        search.visited.insert(h, (depth.min(d), faults_used.min(f)));
    } else {
        search.visited.insert(h, (depth, faults_used));
    }

    if run.scenario.quiescent() {
        if let Err(msg) = run.check_quiescent(&search.baseline) {
            return Some(Violation {
                message: msg,
                schedule: schedule.clone(),
                trace: run.trace.clone(),
            });
        }
        search.quiescent_runs += 1;
        return None;
    }

    let pending_frames = run.scenario.wire().len();
    let timer_pending = run.scenario.sim.peek_next_event_time().is_some();
    if pending_frames == 0 && !timer_pending && run.scenario.host().clib().in_flight() > 0 {
        return Some(Violation {
            message: format!(
                "deadlock: {} ops in flight but no frame, timer, or event pending",
                run.scenario.host().clib().in_flight()
            ),
            schedule: schedule.clone(),
            trace: run.trace.clone(),
        });
    }
    if depth >= search.cfg.max_depth {
        return None;
    }

    // Enumerate children. The run itself cannot be reused across children
    // (each child mutates it), so collect the action list first. Each
    // entry carries its (fault cost, crash cost).
    let mut actions: Vec<(McAction, u32, u32)> = Vec::new();
    for i in 0..pending_frames {
        let reorders = run.scenario.wire().delivery_reorders(i);
        actions.push((McAction::Deliver(i), reorders as u32, 0));
        if !run.scenario.wire().pending()[i].frame.corrupted {
            actions.push((McAction::Corrupt(i), 1, 0));
        }
        actions.push((McAction::Drop(i), 1, 0));
        actions.push((McAction::Duplicate(i), 1, 0));
    }
    if timer_pending {
        actions.push((McAction::FireTimer, 0, 0));
    }
    actions.push((McAction::CrashBoard, 0, 1));
    drop(run);

    for (action, cost, crash_cost) in actions {
        if faults_used + cost > search.cfg.fault_budget
            || crashes_used + crash_cost > search.cfg.crash_budget
        {
            continue;
        }
        schedule.push(action);
        let v = dfs(search, schedule, faults_used + cost, crashes_used + crash_cost);
        schedule.pop();
        if v.is_some() {
            return v;
        }
    }
    None
}
