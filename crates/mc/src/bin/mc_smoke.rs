//! CI smoke run of the bounded model checker.
//!
//! Explores the two-op scenario at the default bounds (override with
//! `MC_DEPTH` / `MC_FAULTS` / `MC_RETRIES` / `MC_CRASHES`), prints the
//! search statistics, and exits nonzero on any invariant violation —
//! printing the replayable counterexample schedule first.

use std::process::ExitCode;
use std::time::Instant;

use clio_mc::{explore, McConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> ExitCode {
    let defaults = McConfig::default();
    let cfg = McConfig {
        max_depth: env_usize("MC_DEPTH", defaults.max_depth),
        fault_budget: env_usize("MC_FAULTS", defaults.fault_budget as usize) as u32,
        max_retries: env_usize("MC_RETRIES", defaults.max_retries as usize) as u32,
        crash_budget: env_usize("MC_CRASHES", defaults.crash_budget as usize) as u32,
        ..defaults
    };
    println!(
        "clio_mc smoke: depth {} / fault budget {} / retries {} / crash budget {}",
        cfg.max_depth, cfg.fault_budget, cfg.max_retries, cfg.crash_budget
    );
    let started = Instant::now();
    let report = explore(&cfg);
    println!(
        "explored {} nodes / {} distinct states / {} quiescent runs in {:.1?}{}",
        report.nodes,
        report.distinct_states,
        report.quiescent_runs,
        started.elapsed(),
        if report.truncated { " (TRUNCATED at node cap)" } else { "" },
    );
    match report.violation {
        None => {
            println!("no invariant violations");
            ExitCode::SUCCESS
        }
        Some(v) => {
            println!("{v}");
            ExitCode::FAILURE
        }
    }
}
