//! The model-checked scenario: a real CN (CLib + transport) and a real
//! CBoard joined by a [`VirtualWire`], with every other source of
//! nondeterminism removed.
//!
//! The scenario is deliberately tiny — two operations (a read and a
//! fetch-and-add on **disjoint** pages) submitted at the same instant — so
//! the interesting state space is the transport's, not the workload's:
//! the two ops coalesce into one `Batch` frame, their responses into one
//! `BatchResp`, and every fault the explorer injects exercises the NACK /
//! timeout / retry / `retry_of`-dedup machinery on both ends. Disjoint
//! pages keep the ops commutative, so the baseline outcome is unique no
//! matter how the explorer interleaves deliveries.
//!
//! Everything protocol-independent is pre-seeded directly into the board's
//! silicon (page tables, page contents), so the wire carries *only* the
//! two fast-path operations under test and the explorer's bounded depth is
//! spent where it matters.

use bytes::Bytes;
use clio_cn::transport::McMutation;
use clio_cn::{CLib, CLibConfig, ClioError, Completion, CompletionValue, Op, ThreadId};
use clio_hw::pagetable::Pte;
use clio_mn::{CBoard, CBoardConfig};
use clio_net::{BoardPower, Frame, Mac, NicPort, VirtualWire};
use clio_proto::{Perm, Pid};
use clio_sim::{Actor, ActorId, Bandwidth, Ctx, Message, SimDuration, SimTime, Simulation};

/// Protection domain the scenario's operations run in.
pub const PID: Pid = Pid(7);
/// Page size of the scenario board (`CBoardConfig::test_small`).
pub const PAGE: u64 = 4096;
/// Virtual address of the page the read targets.
pub const VA_READ: u64 = 16 * PAGE;
/// Virtual address of the cell the fetch-and-add targets (a different
/// page, so the two ops commute and the expected outcome is unique).
pub const VA_FAA: u64 = 17 * PAGE;
/// Bytes the read fetches.
pub const READ_LEN: u32 = 32;
/// Fill byte pre-seeded into the read page.
pub const READ_SEED: u8 = 0xA5;
/// Initial value pre-seeded into the fetch-and-add cell.
pub const FAA_SEED: u64 = 40;
/// Delta the fetch-and-add applies — exactly once, whatever the network
/// does, or the checker reports a violation.
pub const FAA_DELTA: u64 = 2;

/// The CN's MAC on the virtual wire.
pub const CN_MAC: Mac = Mac(1);
/// The board's MAC on the virtual wire (board 0 in multi-MN scenarios).
pub const MN_MAC: Mac = Mac(2);

/// MAC of board `i` on the virtual wire (`mn_mac(0) == MN_MAC`).
pub fn mn_mac(i: usize) -> Mac {
    Mac(2 + i as u32)
}

/// Virtual address of the page the read on board `i` targets. Boards get
/// every other page (`va_read(0) == VA_READ`; 17 * PAGE stays reserved for
/// the single-MN fetch-and-add cell).
pub fn va_read(i: usize) -> u64 {
    (16 + 2 * i as u64) * PAGE
}

/// Fill byte pre-seeded into board `i`'s read page — distinct per board so
/// a misrouted read cannot produce the right bytes by accident.
pub fn read_seed(i: usize) -> u8 {
    READ_SEED.wrapping_add(i as u8)
}

/// Which framing policy the scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Request + response batching on — the explored configuration, where
    /// the two ops travel as one `Batch` frame.
    Batched,
    /// One frame per packet in both directions — the fault-free baseline
    /// the explored runs must be observationally equivalent to.
    Unbatched,
}

/// Submission message for the CN host actor.
struct Submit {
    op: Op,
}

/// The CN host actor under test: owns the NIC and the real [`CLib`]
/// (ordering + transport), collects completions.
pub struct McCnHost {
    nic: NicPort,
    clib: CLib,
    completions: Vec<Completion>,
}

impl McCnHost {
    /// The CLib under test (the explorer fingerprints and invariant-checks
    /// its transport through this).
    pub fn clib(&self) -> &CLib {
        &self.clib
    }

    /// Completions collected so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }
}

impl Actor for McCnHost {
    fn name(&self) -> &str {
        "mc-cn-host"
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let msg = match msg.downcast::<Submit>() {
            Ok(s) => {
                let (_t, comps) = self.clib.submit(ctx, &mut self.nic, ThreadId(0), s.op);
                self.completions.extend(comps);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Frame>() {
            Ok(f) => {
                let comps = self.clib.on_frame(ctx, &mut self.nic, f);
                self.completions.extend(comps);
                return;
            }
            Err(m) => m,
        };
        let (comps, leftover) = self.clib.on_timer(ctx, &mut self.nic, msg);
        assert!(leftover.is_none(), "unexpected message at mc CN host");
        self.completions.extend(comps);
    }
}

/// One scenario instance: the simulation plus the actor ids the explorer
/// steers.
pub struct Scenario {
    /// The simulation under exploration.
    pub sim: Simulation,
    /// The [`VirtualWire`] actor.
    pub wire: ActorId,
    /// The CN host actor ([`McCnHost`]).
    pub cn: ActorId,
    /// The CBoard actors, one per memory node, in board order (board 0 is
    /// `MN_MAC`, board `i` is `mn_mac(i)`).
    pub boards: Vec<ActorId>,
}

impl Scenario {
    /// Builds the single-board two-op scenario (read + fetch-and-add).
    /// Equivalent to [`Scenario::new_with`] with one memory node.
    pub fn new(framing: Framing, mutation: McMutation, max_retries: u32) -> Self {
        Scenario::new_with(framing, mutation, max_retries, 1)
    }

    /// Builds the scenario with `mns` memory boards behind the shared wire,
    /// each with pre-installed page tables and pre-seeded page contents,
    /// and a CN with every operation submitted at `t = 0` (so same-board
    /// ops coalesce under the batched framing). With one board the op mix
    /// is the classic read + fetch-and-add pair; with several it is one
    /// read per board, so the explorer exercises per-destination windows,
    /// retries, and dedup while frames to different boards interleave.
    /// Nothing has executed yet — the caller settles the simulation to
    /// materialize the first frames.
    pub fn new_with(framing: Framing, mutation: McMutation, max_retries: u32, mns: usize) -> Self {
        assert!(mns >= 1, "scenario needs at least one memory board");
        let mut sim = Simulation::new(1);
        let wire = sim.add_actor(VirtualWire::new());

        let mut boards = Vec::with_capacity(mns);
        for i in 0..mns {
            let board_cfg = match framing {
                Framing::Batched => CBoardConfig::test_small(),
                Framing::Unbatched => CBoardConfig {
                    hw: CBoardConfig::test_small().hw,
                    ..CBoardConfig::prototype_unbatched()
                },
            };
            let mac = mn_mac(i);
            let bport =
                NicPort::new(mac, Bandwidth::from_gbps(10), wire, SimDuration::from_nanos(5));
            let mut board = CBoard::new(format!("mc-mn{i}"), board_cfg, bport);
            seed_board(&mut board, i, mns);
            let board = sim.add_actor(board);
            sim.actor_mut::<VirtualWire>(wire).attach(mac, board);
            boards.push(board);
        }

        let clib_cfg = match framing {
            Framing::Batched => CLibConfig { max_retries, ..CLibConfig::prototype() },
            Framing::Unbatched => CLibConfig { max_retries, ..CLibConfig::prototype_unbatched() },
        };
        let cport =
            NicPort::new(CN_MAC, Bandwidth::from_gbps(40), wire, SimDuration::from_nanos(5));
        let mut clib = CLib::new(clib_cfg, 1, PAGE);
        clib.transport_mut().set_mc_mutation(mutation);
        let cn = sim.add_actor(McCnHost { nic: cport, clib, completions: vec![] });
        sim.actor_mut::<VirtualWire>(wire).attach(CN_MAC, cn);

        if mns == 1 {
            // Both ops at the same instant: the doorbell coalesces them
            // into one Batch frame under the batched framing.
            sim.post(
                cn,
                Message::new(Submit {
                    op: Op::Read { mn: MN_MAC, pid: PID, va: VA_READ, len: READ_LEN },
                }),
            );
            sim.post(
                cn,
                Message::new(Submit {
                    op: Op::Faa { mn: MN_MAC, pid: PID, va: VA_FAA, delta: FAA_DELTA },
                }),
            );
        } else {
            // One read per board, all at the same instant: each board gets
            // its own frame (batching is per destination), so the wire
            // holds concurrently-in-flight traffic to every board.
            for i in 0..mns {
                sim.post(
                    cn,
                    Message::new(Submit {
                        op: Op::Read { mn: mn_mac(i), pid: PID, va: va_read(i), len: READ_LEN },
                    }),
                );
            }
        }
        Scenario { sim, wire, cn, boards }
    }

    /// The wire, read-only.
    pub fn wire(&self) -> &VirtualWire {
        self.sim.actor::<VirtualWire>(self.wire)
    }

    /// The wire, mutable (the explorer corrupts/takes/injects through
    /// this).
    pub fn wire_mut(&mut self) -> &mut VirtualWire {
        self.sim.actor_mut::<VirtualWire>(self.wire)
    }

    /// The CN host, read-only.
    pub fn host(&self) -> &McCnHost {
        self.sim.actor::<McCnHost>(self.cn)
    }

    /// Board 0, read-only.
    pub fn cboard(&self) -> &CBoard {
        self.cboard_at(0)
    }

    /// Board `i`, read-only.
    pub fn cboard_at(&self, i: usize) -> &CBoard {
        self.sim.actor::<CBoard>(self.boards[i])
    }

    /// Logical fingerprint of every board, in board order (the explorer
    /// folds these into its state hash).
    pub fn board_fingerprints(&self) -> Vec<u64> {
        (0..self.boards.len()).map(|i| self.cboard_at(i).fingerprint()).collect()
    }

    /// Power-blips board 0: posts a [`BoardPower::Crash`] immediately
    /// followed by a [`BoardPower::Restart`], so the next settle loses the
    /// board's volatile state (dedup buffer, egress queues, pending
    /// doorbells) while committed DRAM, page tables, and allocator state
    /// survive. Frames already captured on the wire are untouched — they
    /// belong to the network, not the board.
    pub fn power_blip(&mut self) {
        self.sim.post(self.boards[0], Message::new(BoardPower::Crash));
        self.sim.post(self.boards[0], Message::new(BoardPower::Restart));
    }

    /// Removes pending frame `index` from the wire and posts it to its
    /// destination actor (delivery happens when the simulation next runs).
    pub fn deliver(&mut self, index: usize) {
        let frame = self.wire_mut().take(index);
        let dst = self.wire().endpoint(frame.dst).expect("destination attached");
        self.sim.post(dst, Message::new(frame));
    }

    /// True when the run is over: no frame in flight, no operation in
    /// flight, and no simulation event pending.
    pub fn quiescent(&mut self) -> bool {
        self.wire().is_empty()
            && self.host().clib().in_flight() == 0
            && self.sim.peek_next_event_time().is_none()
    }

    /// Extracts the observable outcome of a finished run: per-op results
    /// in token order, plus the final contents of every touched page read
    /// back directly from silicon (no protocol traffic).
    pub fn outcome(&mut self) -> Outcome {
        let mut results: Vec<(u64, Result<CompletionValue, ClioError>)> =
            self.host().completions().iter().map(|c| (c.token.0, c.result.clone())).collect();
        results.sort_by_key(|(t, _)| *t);
        let now = self.sim.now();
        let boards = self.boards.clone();
        let single = boards.len() == 1;
        let mut read_pages = Vec::with_capacity(boards.len());
        let mut faa_cell = None;
        for (i, id) in boards.iter().enumerate() {
            let silicon = self.sim.actor_mut::<CBoard>(*id).silicon_mut();
            let was = silicon.set_internal_access(true);
            let (page, _) = silicon.read(now, PID, va_read(i), READ_LEN);
            read_pages.push(page.expect("read page readable"));
            if single {
                let (cell, _) = silicon.read(now, PID, VA_FAA, 8);
                let mut le = [0u8; 8];
                le.copy_from_slice(&cell.expect("faa cell readable"));
                faa_cell = Some(u64::from_le_bytes(le));
            }
            silicon.set_internal_access(was);
        }
        Outcome { results, read_pages, faa_cell }
    }
}

/// The observable outcome of a finished run: what the application saw plus
/// what the memory ended up holding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Per-op `(token, result)` in token (= submission) order.
    pub results: Vec<(u64, Result<CompletionValue, ClioError>)>,
    /// Final bytes of each board's read-target page slice, in board order.
    pub read_pages: Vec<Bytes>,
    /// Final value of the fetch-and-add cell (seed + delta if the add took
    /// effect exactly once). `None` in multi-MN scenarios, whose op mix is
    /// read-only.
    pub faa_cell: Option<u64>,
}

/// Installs page tables and seeds page contents for board `index`'s target
/// pages, so the explored wire traffic is exactly the ops under test. The
/// single-board scenario also hosts the fetch-and-add cell.
fn seed_board(board: &mut CBoard, index: usize, mns: usize) {
    // The board constructor pre-fills the async free-page buffer, so
    // first-touch faults during seeding are served without slow-path help.
    let silicon = board.silicon_mut();
    let mut pages: Vec<(u64, Vec<u8>)> =
        vec![(va_read(index), vec![read_seed(index); READ_LEN as usize])];
    if mns == 1 {
        pages.push((VA_FAA, FAA_SEED.to_le_bytes().to_vec()));
    }
    for (va, _) in &pages {
        silicon
            .vm_mut()
            .install_pte(Pte { pid: PID, vpn: va / PAGE, ppn: 0, perm: Perm::RW, valid: false })
            .expect("install pte");
    }
    let was = silicon.set_internal_access(true);
    for (va, data) in &pages {
        silicon.write(SimTime::ZERO, PID, *va, data).0.expect("seed page");
    }
    silicon.set_internal_access(was);
}
