//! The model-checked scenario: a real CN (CLib + transport) and a real
//! CBoard joined by a [`VirtualWire`], with every other source of
//! nondeterminism removed.
//!
//! The scenario is deliberately tiny — two operations (a read and a
//! fetch-and-add on **disjoint** pages) submitted at the same instant — so
//! the interesting state space is the transport's, not the workload's:
//! the two ops coalesce into one `Batch` frame, their responses into one
//! `BatchResp`, and every fault the explorer injects exercises the NACK /
//! timeout / retry / `retry_of`-dedup machinery on both ends. Disjoint
//! pages keep the ops commutative, so the baseline outcome is unique no
//! matter how the explorer interleaves deliveries.
//!
//! Everything protocol-independent is pre-seeded directly into the board's
//! silicon (page tables, page contents), so the wire carries *only* the
//! two fast-path operations under test and the explorer's bounded depth is
//! spent where it matters.

use bytes::Bytes;
use clio_cn::transport::McMutation;
use clio_cn::{CLib, CLibConfig, ClioError, Completion, CompletionValue, Op, ThreadId};
use clio_hw::pagetable::Pte;
use clio_mn::{CBoard, CBoardConfig};
use clio_net::{BoardPower, Frame, Mac, NicPort, VirtualWire};
use clio_proto::{Perm, Pid};
use clio_sim::{Actor, ActorId, Bandwidth, Ctx, Message, SimDuration, SimTime, Simulation};

/// Protection domain the scenario's operations run in.
pub const PID: Pid = Pid(7);
/// Page size of the scenario board (`CBoardConfig::test_small`).
pub const PAGE: u64 = 4096;
/// Virtual address of the page the read targets.
pub const VA_READ: u64 = 16 * PAGE;
/// Virtual address of the cell the fetch-and-add targets (a different
/// page, so the two ops commute and the expected outcome is unique).
pub const VA_FAA: u64 = 17 * PAGE;
/// Bytes the read fetches.
pub const READ_LEN: u32 = 32;
/// Fill byte pre-seeded into the read page.
pub const READ_SEED: u8 = 0xA5;
/// Initial value pre-seeded into the fetch-and-add cell.
pub const FAA_SEED: u64 = 40;
/// Delta the fetch-and-add applies — exactly once, whatever the network
/// does, or the checker reports a violation.
pub const FAA_DELTA: u64 = 2;

/// The CN's MAC on the virtual wire.
pub const CN_MAC: Mac = Mac(1);
/// The board's MAC on the virtual wire.
pub const MN_MAC: Mac = Mac(2);

/// Which framing policy the scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Request + response batching on — the explored configuration, where
    /// the two ops travel as one `Batch` frame.
    Batched,
    /// One frame per packet in both directions — the fault-free baseline
    /// the explored runs must be observationally equivalent to.
    Unbatched,
}

/// Submission message for the CN host actor.
struct Submit {
    op: Op,
}

/// The CN host actor under test: owns the NIC and the real [`CLib`]
/// (ordering + transport), collects completions.
pub struct McCnHost {
    nic: NicPort,
    clib: CLib,
    completions: Vec<Completion>,
}

impl McCnHost {
    /// The CLib under test (the explorer fingerprints and invariant-checks
    /// its transport through this).
    pub fn clib(&self) -> &CLib {
        &self.clib
    }

    /// Completions collected so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }
}

impl Actor for McCnHost {
    fn name(&self) -> &str {
        "mc-cn-host"
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let msg = match msg.downcast::<Submit>() {
            Ok(s) => {
                let (_t, comps) = self.clib.submit(ctx, &mut self.nic, ThreadId(0), s.op);
                self.completions.extend(comps);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Frame>() {
            Ok(f) => {
                let comps = self.clib.on_frame(ctx, &mut self.nic, f);
                self.completions.extend(comps);
                return;
            }
            Err(m) => m,
        };
        let (comps, leftover) = self.clib.on_timer(ctx, &mut self.nic, msg);
        assert!(leftover.is_none(), "unexpected message at mc CN host");
        self.completions.extend(comps);
    }
}

/// One scenario instance: the simulation plus the actor ids the explorer
/// steers.
pub struct Scenario {
    /// The simulation under exploration.
    pub sim: Simulation,
    /// The [`VirtualWire`] actor.
    pub wire: ActorId,
    /// The CN host actor ([`McCnHost`]).
    pub cn: ActorId,
    /// The CBoard actor.
    pub board: ActorId,
}

impl Scenario {
    /// Builds the two-op scenario: board with pre-installed page tables and
    /// pre-seeded page contents, CN with both operations submitted at
    /// `t = 0` (so they coalesce under the batched framing), everything
    /// wired through a [`VirtualWire`]. Nothing has executed yet — the
    /// caller settles the simulation to materialize the first frames.
    pub fn new(framing: Framing, mutation: McMutation, max_retries: u32) -> Self {
        let mut sim = Simulation::new(1);
        let wire = sim.add_actor(VirtualWire::new());

        let board_cfg = match framing {
            Framing::Batched => CBoardConfig::test_small(),
            Framing::Unbatched => CBoardConfig {
                hw: CBoardConfig::test_small().hw,
                ..CBoardConfig::prototype_unbatched()
            },
        };
        let bport =
            NicPort::new(MN_MAC, Bandwidth::from_gbps(10), wire, SimDuration::from_nanos(5));
        let mut board = CBoard::new("mc-mn", board_cfg, bport);
        seed_board(&mut board);
        let board = sim.add_actor(board);
        sim.actor_mut::<VirtualWire>(wire).attach(MN_MAC, board);

        let clib_cfg = match framing {
            Framing::Batched => CLibConfig { max_retries, ..CLibConfig::prototype() },
            Framing::Unbatched => CLibConfig { max_retries, ..CLibConfig::prototype_unbatched() },
        };
        let cport =
            NicPort::new(CN_MAC, Bandwidth::from_gbps(40), wire, SimDuration::from_nanos(5));
        let mut clib = CLib::new(clib_cfg, 1, PAGE);
        clib.transport_mut().set_mc_mutation(mutation);
        let cn = sim.add_actor(McCnHost { nic: cport, clib, completions: vec![] });
        sim.actor_mut::<VirtualWire>(wire).attach(CN_MAC, cn);

        // Both ops at the same instant: the doorbell coalesces them into
        // one Batch frame under the batched framing.
        sim.post(
            cn,
            Message::new(Submit {
                op: Op::Read { mn: MN_MAC, pid: PID, va: VA_READ, len: READ_LEN },
            }),
        );
        sim.post(
            cn,
            Message::new(Submit {
                op: Op::Faa { mn: MN_MAC, pid: PID, va: VA_FAA, delta: FAA_DELTA },
            }),
        );
        Scenario { sim, wire, cn, board }
    }

    /// The wire, read-only.
    pub fn wire(&self) -> &VirtualWire {
        self.sim.actor::<VirtualWire>(self.wire)
    }

    /// The wire, mutable (the explorer corrupts/takes/injects through
    /// this).
    pub fn wire_mut(&mut self) -> &mut VirtualWire {
        self.sim.actor_mut::<VirtualWire>(self.wire)
    }

    /// The CN host, read-only.
    pub fn host(&self) -> &McCnHost {
        self.sim.actor::<McCnHost>(self.cn)
    }

    /// The board, read-only.
    pub fn cboard(&self) -> &CBoard {
        self.sim.actor::<CBoard>(self.board)
    }

    /// Power-blips the board: posts a [`BoardPower::Crash`] immediately
    /// followed by a [`BoardPower::Restart`], so the next settle loses the
    /// board's volatile state (dedup buffer, egress queues, pending
    /// doorbells) while committed DRAM, page tables, and allocator state
    /// survive. Frames already captured on the wire are untouched — they
    /// belong to the network, not the board.
    pub fn power_blip(&mut self) {
        self.sim.post(self.board, Message::new(BoardPower::Crash));
        self.sim.post(self.board, Message::new(BoardPower::Restart));
    }

    /// Removes pending frame `index` from the wire and posts it to its
    /// destination actor (delivery happens when the simulation next runs).
    pub fn deliver(&mut self, index: usize) {
        let frame = self.wire_mut().take(index);
        let dst = self.wire().endpoint(frame.dst).expect("destination attached");
        self.sim.post(dst, Message::new(frame));
    }

    /// True when the run is over: no frame in flight, no operation in
    /// flight, and no simulation event pending.
    pub fn quiescent(&mut self) -> bool {
        self.wire().is_empty()
            && self.host().clib().in_flight() == 0
            && self.sim.peek_next_event_time().is_none()
    }

    /// Extracts the observable outcome of a finished run: per-op results
    /// in token order, plus the final contents of both touched pages read
    /// back directly from silicon (no protocol traffic).
    pub fn outcome(&mut self) -> Outcome {
        let mut results: Vec<(u64, Result<CompletionValue, ClioError>)> =
            self.host().completions().iter().map(|c| (c.token.0, c.result.clone())).collect();
        results.sort_by_key(|(t, _)| *t);
        let now = self.sim.now();
        let silicon = self.sim.actor_mut::<CBoard>(self.board).silicon_mut();
        let was = silicon.set_internal_access(true);
        let (read_page, _) = silicon.read(now, PID, VA_READ, READ_LEN);
        let (faa_cell, _) = silicon.read(now, PID, VA_FAA, 8);
        silicon.set_internal_access(was);
        let faa_bytes = faa_cell.expect("faa cell readable");
        let mut le = [0u8; 8];
        le.copy_from_slice(&faa_bytes);
        Outcome {
            results,
            read_page: read_page.expect("read page readable"),
            faa_cell: u64::from_le_bytes(le),
        }
    }
}

/// The observable outcome of a finished run: what the application saw plus
/// what the memory ended up holding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Per-op `(token, result)` in token (= submission) order.
    pub results: Vec<(u64, Result<CompletionValue, ClioError>)>,
    /// Final bytes of the read-target page slice.
    pub read_page: Bytes,
    /// Final value of the fetch-and-add cell (seed + delta if the add took
    /// effect exactly once).
    pub faa_cell: u64,
}

/// Installs page tables and seeds page contents for both target pages, so
/// the explored wire traffic is exactly the two ops under test.
fn seed_board(board: &mut CBoard) {
    // The board constructor pre-fills the async free-page buffer, so
    // first-touch faults during seeding are served without slow-path help.
    let silicon = board.silicon_mut();
    for vpn in [VA_READ / PAGE, VA_FAA / PAGE] {
        silicon
            .vm_mut()
            .install_pte(Pte { pid: PID, vpn, ppn: 0, perm: Perm::RW, valid: false })
            .expect("install pte");
    }
    let was = silicon.set_internal_access(true);
    silicon
        .write(SimTime::ZERO, PID, VA_READ, &[READ_SEED; READ_LEN as usize])
        .0
        .expect("seed read page");
    silicon.write(SimTime::ZERO, PID, VA_FAA, &FAA_SEED.to_le_bytes()).0.expect("seed faa cell");
    silicon.set_internal_access(was);
}
