//! # clio-mc — bounded model checker for the Clio transport
//!
//! Converts "we sampled it" into "we searched it": where the proptests
//! drive the CN transport and MN CBoard through *random* fault
//! interleavings, this crate drives the **real** production state machines
//! through **every** network-event interleaving up to a bounded depth and
//! fault budget, checking the transport's documented invariants (see the
//! `# Invariants` sections of [`clio_cn::transport`] and
//! `clio_mn::board`) at every reachable state.
//!
//! The pieces:
//!
//! * [`harness`] — a two-op CN↔MN scenario over a
//!   [`VirtualWire`](clio_net::VirtualWire): the stochastic fault injector
//!   replaced by an explorer-chosen schedule,
//! * [`explorer`] — depth-first search over [`McAction`] schedules
//!   (deliver / reorder / corrupt / drop / duplicate / fire-timer), with
//!   state-fingerprint pruning and per-state invariant checks,
//! * counterexamples — a failing search returns the exact [`Violation`]
//!   schedule, replayable with [`replay`] as a deterministic regression
//!   test,
//! * a `mc_smoke` binary running the CI-sized bounded exploration.
//!
//! A quick search of the real transport:
//!
//! ```
//! use clio_mc::{explore, McConfig};
//!
//! let report = explore(&McConfig { max_depth: 4, fault_budget: 1, ..McConfig::default() });
//! assert!(report.violation.is_none(), "{}", report.violation.unwrap());
//! ```
//!
//! And proof the checker has teeth — a planted window leak is caught with
//! a replayable schedule:
//!
//! ```
//! use clio_cn::transport::McMutation;
//! use clio_mc::{explore, McConfig};
//!
//! let cfg = McConfig {
//!     max_depth: 5,
//!     fault_budget: 2,
//!     mutation: McMutation::LeakWindowOnNack,
//!     max_retries: 1,
//!     ..McConfig::default()
//! };
//! let report = explore(&cfg);
//! assert!(report.violation.is_some());
//! ```

pub mod explorer;
pub mod harness;

pub use explorer::{baseline_outcome, explore, replay, McAction, McConfig, McReport, Violation};
pub use harness::{Framing, McCnHost, Outcome, Scenario};
