//! Integration tests for the bounded model checker itself.
//!
//! Three things have to hold before the smoke run's "no violations" means
//! anything:
//!
//! 1. a bounded search of the real transport is clean AND actually covers
//!    a non-trivial state space,
//! 2. each of the four fault types can be injected and survived on a
//!    deterministic schedule,
//! 3. the checker has teeth — a planted transport bug is caught, and the
//!    counterexample it prints replays to the same violation.

use clio_cn::transport::McMutation;
use clio_mc::{explore, replay, McAction, McConfig};
use clio_sim::SimDuration;

use McAction::{Corrupt, Deliver, Drop, Duplicate, FireTimer};

/// CI-sized clean search: the full schedule tree to depth 6 with two
/// injected faults. Must be exhaustive (not truncated), sizeable (the
/// acceptance floor is 10 k distinct states), and violation-free.
#[test]
fn bounded_search_of_the_real_transport_is_clean() {
    let cfg = McConfig { max_depth: 6, ..McConfig::default() };
    let report = explore(&cfg);
    assert!(!report.truncated, "search hit the node cap; not exhaustive");
    assert!(
        report.distinct_states >= 10_000,
        "only {} distinct states — scenario degenerated?",
        report.distinct_states
    );
    assert!(report.quiescent_runs > 0, "no schedule reached quiescence");
    if let Some(v) = report.violation {
        panic!("{v}");
    }
}

/// Every fault type on one deterministic schedule: the batch is
/// duplicated, the duplicate dropped, the response corrupted (forcing the
/// timeout/retry path), and the retry's response delivered late. The
/// transport must still converge to the fault-free outcome.
#[test]
fn all_four_fault_types_on_one_schedule_stay_clean() {
    let schedule = [
        Duplicate(0), // clone the Batch frame -> two copies in flight
        Drop(1),      // drop the clone
        Deliver(0),   // deliver the original Batch
        Corrupt(0),   // corrupt the BatchResp on delivery -> CN discards
        FireTimer,    // both ops time out and retry
        Deliver(0),
        Deliver(0),
        Deliver(0),
        Deliver(0),
    ];
    let cfg = McConfig { fault_budget: 3, max_depth: schedule.len(), ..McConfig::default() };
    if let Err(v) = replay(&cfg, &schedule) {
        panic!("{v}");
    }
}

/// Delivering the duplicate instead of dropping it exercises the MN-side
/// dedup path for a frame that was never retried at all.
#[test]
fn delivered_duplicate_batch_is_deduplicated() {
    let schedule = [Duplicate(0), Deliver(0), Deliver(0), Deliver(0), Deliver(0)];
    let cfg = McConfig { fault_budget: 1, max_depth: schedule.len(), ..McConfig::default() };
    if let Err(v) = replay(&cfg, &schedule) {
        panic!("{v}");
    }
}

/// The self-test that gives the clean result meaning: a transport with a
/// planted window leak (skipping `release_windows` when a NACK exhausts
/// the retry budget) must be caught, and the printed counterexample must
/// replay to a violation under the same configuration.
#[test]
fn planted_window_leak_is_caught_and_replays() {
    let cfg = McConfig {
        max_depth: 5,
        fault_budget: 2,
        mutation: McMutation::LeakWindowOnNack,
        max_retries: 1,
        ..McConfig::default()
    };
    let report = explore(&cfg);
    let v = report.violation.expect("planted window leak must be caught");
    assert!(v.message.contains("leaked"), "expected a window-leak violation, got: {}", v.message);
    let replayed = replay(&cfg, &v.schedule).expect_err("counterexample must replay");
    assert_eq!(replayed.message, v.message, "replay diverged from the search");
}

/// Sanity on the bounds themselves: a zero-fault search is a plain
/// delivery-order exploration and must stay clean even at larger depth.
#[test]
fn fault_free_delivery_orders_are_clean() {
    let cfg = McConfig {
        max_depth: 8,
        fault_budget: 0,
        settle_horizon: SimDuration::from_micros(20),
        ..McConfig::default()
    };
    let report = explore(&cfg);
    assert!(!report.truncated);
    if let Some(v) = report.violation {
        panic!("{v}");
    }
}
