//! Integration tests for the bounded model checker itself.
//!
//! Three things have to hold before the smoke run's "no violations" means
//! anything:
//!
//! 1. a bounded search of the real transport is clean AND actually covers
//!    a non-trivial state space,
//! 2. each of the four fault types can be injected and survived on a
//!    deterministic schedule,
//! 3. the checker has teeth — a planted transport bug is caught, and the
//!    counterexample it prints replays to the same violation.

use clio_cn::transport::McMutation;
use clio_mc::{explore, replay, McAction, McConfig};
use clio_sim::SimDuration;

use McAction::{Corrupt, Deliver, Drop, Duplicate, FireTimer};

/// CI-sized clean search: the full schedule tree to depth 6 with two
/// injected faults. Must be exhaustive (not truncated), sizeable (the
/// acceptance floor is 10 k distinct states), and violation-free.
#[test]
fn bounded_search_of_the_real_transport_is_clean() {
    let cfg = McConfig { max_depth: 6, ..McConfig::default() };
    let report = explore(&cfg);
    assert!(!report.truncated, "search hit the node cap; not exhaustive");
    assert!(
        report.distinct_states >= 10_000,
        "only {} distinct states — scenario degenerated?",
        report.distinct_states
    );
    assert!(report.quiescent_runs > 0, "no schedule reached quiescence");
    if let Some(v) = report.violation {
        panic!("{v}");
    }
}

/// Every fault type on one deterministic schedule: the batch is
/// duplicated, the duplicate dropped, the response corrupted (forcing the
/// timeout/retry path), and the retry's response delivered late. The
/// transport must still converge to the fault-free outcome.
#[test]
fn all_four_fault_types_on_one_schedule_stay_clean() {
    let schedule = [
        Duplicate(0), // clone the Batch frame -> two copies in flight
        Drop(1),      // drop the clone
        Deliver(0),   // deliver the original Batch
        Corrupt(0),   // corrupt the BatchResp on delivery -> CN discards
        FireTimer,    // both ops time out and retry
        Deliver(0),
        Deliver(0),
        Deliver(0),
        Deliver(0),
    ];
    let cfg = McConfig { fault_budget: 3, max_depth: schedule.len(), ..McConfig::default() };
    if let Err(v) = replay(&cfg, &schedule) {
        panic!("{v}");
    }
}

/// Delivering the duplicate instead of dropping it exercises the MN-side
/// dedup path for a frame that was never retried at all.
#[test]
fn delivered_duplicate_batch_is_deduplicated() {
    let schedule = [Duplicate(0), Deliver(0), Deliver(0), Deliver(0), Deliver(0)];
    let cfg = McConfig { fault_budget: 1, max_depth: schedule.len(), ..McConfig::default() };
    if let Err(v) = replay(&cfg, &schedule) {
        panic!("{v}");
    }
}

/// The self-test that gives the clean result meaning: a transport with a
/// planted window leak (skipping `release_windows` when a NACK exhausts
/// the retry budget) must be caught, and the printed counterexample must
/// replay to a violation under the same configuration.
#[test]
fn planted_window_leak_is_caught_and_replays() {
    let cfg = McConfig {
        max_depth: 5,
        fault_budget: 2,
        mutation: McMutation::LeakWindowOnNack,
        max_retries: 1,
        ..McConfig::default()
    };
    let report = explore(&cfg);
    let v = report.violation.expect("planted window leak must be caught");
    assert!(v.message.contains("leaked"), "expected a window-leak violation, got: {}", v.message);
    let replayed = replay(&cfg, &v.schedule).expect_err("counterexample must replay");
    assert_eq!(replayed.message, v.message, "replay diverged from the search");
}

/// A bounded search with one board power-blip in the budget: every
/// schedule interleaving a crash/restart with the two-op exchange must
/// keep all existing invariants — window accounting and id freshness at
/// every settled state, single completion and drained windows at
/// quiescence — with the outcome held to the relaxed at-least-once spec
/// (the dedup buffer is volatile, so a post-crash retry may re-execute
/// the FAA once per blip, never more).
#[test]
fn one_crash_schedules_of_the_two_op_exchange_stay_clean() {
    let cfg = McConfig { max_depth: 6, crash_budget: 1, ..McConfig::default() };
    let report = explore(&cfg);
    assert!(!report.truncated, "search hit the node cap; not exhaustive");
    assert!(report.quiescent_runs > 0, "no crash schedule reached quiescence");
    if let Some(v) = report.violation {
        panic!("{v}");
    }
    // The crash budget genuinely widens the search: the same bounds
    // without it visit strictly fewer states.
    let without = explore(&McConfig { max_depth: 6, crash_budget: 0, ..McConfig::default() });
    assert!(
        report.distinct_states > without.distinct_states,
        "crash budget added no states ({} vs {})",
        report.distinct_states,
        without.distinct_states
    );
}

/// A deterministic crash schedule pinning the at-least-once relaxation:
/// the batch executes, its response is dropped, the board power-blips
/// (dedup buffer lost), and the timeout-driven retry re-executes the FAA.
/// The run must stay violation-free — the re-execution is within the
/// volatile-dedup spec — and reach quiescence.
#[test]
fn crash_after_execution_reexecutes_faa_within_spec() {
    let schedule = [
        Deliver(0),           // deliver the Batch: both ops execute
        Drop(0),              // drop the BatchResp -> CN never hears back
        McAction::CrashBoard, // power-blip: dedup buffer now cold
        FireTimer,            // retry both ops
        Deliver(0),           // deliver the retry batch -> FAA re-executes
        Deliver(0),           // deliver its response
        Deliver(0),
        Deliver(0),
    ];
    let cfg = McConfig {
        fault_budget: 1,
        crash_budget: 1,
        max_depth: schedule.len(),
        ..McConfig::default()
    };
    if let Err(v) = replay(&cfg, &schedule) {
        panic!("{v}");
    }
}

/// Two memory boards behind the shared wire, one read per board: the
/// bounded search must keep every invariant per board — window accounting
/// per destination, dedup on whichever board the fault lands on, strict
/// observational equivalence at quiescence — while frames to the two
/// boards interleave in every order the bounds allow.
#[test]
fn two_mn_bounded_search_is_clean() {
    let cfg = McConfig { mns: 2, max_depth: 5, fault_budget: 1, ..McConfig::default() };
    let report = explore(&cfg);
    assert!(!report.truncated, "search hit the node cap; not exhaustive");
    assert!(report.quiescent_runs > 0, "no two-MN schedule reached quiescence");
    if let Some(v) = report.violation {
        panic!("{v}");
    }
    // The second board genuinely widens the search at identical bounds:
    // the single-MN scenario coalesces both ops into one frame, the
    // two-MN one keeps a frame in flight per destination.
    let single =
        explore(&McConfig { mns: 1, max_depth: 5, fault_budget: 1, ..McConfig::default() });
    assert!(
        report.distinct_states > single.distinct_states,
        "second board added no states ({} vs {})",
        report.distinct_states,
        single.distinct_states
    );
}

/// Deterministic two-MN dedup check: duplicate each board's request frame
/// and deliver both copies — each board must dedup its own duplicate
/// independently, and the run must converge to the fault-free outcome.
#[test]
fn two_mn_duplicates_are_deduplicated_per_board() {
    // At the first decision point the wire holds one request frame per
    // board (capture order: board 0, board 1). Duplicate both, then drain
    // everything in capture order; dedup on each board must absorb the
    // clones.
    // Four requests (two originals + two clones) and a response per
    // delivered request (dedup answers a duplicate from its cache): eight
    // deliveries drain the wire.
    let schedule = [
        Duplicate(0), // clone board 0's request
        Duplicate(1), // clone board 1's request
        Deliver(0),
        Deliver(0),
        Deliver(0),
        Deliver(0),
        Deliver(0),
        Deliver(0),
        Deliver(0),
        Deliver(0),
    ];
    let cfg =
        McConfig { mns: 2, fault_budget: 2, max_depth: schedule.len(), ..McConfig::default() };
    if let Err(v) = replay(&cfg, &schedule) {
        panic!("{v}");
    }
}

/// Sanity on the bounds themselves: a zero-fault search is a plain
/// delivery-order exploration and must stay clean even at larger depth.
#[test]
fn fault_free_delivery_orders_are_clean() {
    let cfg = McConfig {
        max_depth: 8,
        fault_budget: 0,
        settle_horizon: SimDuration::from_micros(20),
        ..McConfig::default()
    };
    let report = explore(&cfg);
    assert!(!report.truncated);
    if let Some(v) = report.violation {
        panic!("{v}");
    }
}
