//! CapEx and power cost model (paper §7.3).
//!
//! The paper estimates memory-node build cost from market prices: a
//! server-based MN needs a whole host (chassis, CPU, motherboard, NIC)
//! around its DRAM, while a CBoard needs only the ASIC/FPGA, board and
//! ports. With 1 TB of DRAM the paper lands at **1.1–1.5× cost and
//! 1.9–2.7× power** for the server, growing to **1.4–2.5× and 5.1–8.6×**
//! with Optane persistent memory (whose own cost/power is lower, making the
//! host overhead relatively larger).

/// Bill of materials for one memory-node flavor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    /// Name for the table.
    pub name: &'static str,
    /// Fixed platform cost (chassis/CPU/board/NIC or CBoard+ports), USD.
    pub platform_cost_usd: f64,
    /// Fixed platform power (host idle+CPU or FPGA+ARM), W.
    pub platform_watts: f64,
}

/// Memory-media options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Media {
    /// DDR4 DRAM.
    Dram,
    /// Intel Optane DC persistent memory.
    Optane,
}

impl Media {
    /// USD per GB (2021-ish market prices, as the paper uses).
    pub fn usd_per_gb(self) -> f64 {
        match self {
            Media::Dram => 4.5,
            Media::Optane => 2.2,
        }
    }

    /// Watts per GB under load.
    pub fn watts_per_gb(self) -> f64 {
        match self {
            Media::Dram => 0.17,
            Media::Optane => 0.03,
        }
    }
}

/// A dual-socket server hosting remote memory (the RDMA baseline).
pub fn server_platform() -> NodeCost {
    NodeCost { name: "Server-MN", platform_cost_usd: 2800.0, platform_watts: 220.0 }
}

/// A conservative (high-cost) server build.
pub fn server_platform_highend() -> NodeCost {
    NodeCost { name: "Server-MN (high)", platform_cost_usd: 5200.0, platform_watts: 330.0 }
}

/// A CBoard (ASIC + board + ports + ARM).
pub fn cboard_platform() -> NodeCost {
    NodeCost { name: "CBoard", platform_cost_usd: 1600.0, platform_watts: 14.0 }
}

/// Total cost (USD) and power (W) of a node with `gb` of `media`.
pub fn node_totals(platform: NodeCost, media: Media, gb: f64) -> (f64, f64) {
    (
        platform.platform_cost_usd + media.usd_per_gb() * gb,
        platform.platform_watts + media.watts_per_gb() * gb,
    )
}

/// The §7.3 comparison: `(cost_ratio_low..high, power_ratio_low..high)` of
/// server-based MNs over CBoards for 1 TB of the given media.
pub fn ratios(media: Media) -> ((f64, f64), (f64, f64)) {
    let gb = 1024.0;
    let (cb_cost, cb_watts) = node_totals(cboard_platform(), media, gb);
    let (lo_cost, lo_watts) = node_totals(server_platform(), media, gb);
    let (hi_cost, hi_watts) = node_totals(server_platform_highend(), media, gb);
    ((lo_cost / cb_cost, hi_cost / cb_cost), (lo_watts / cb_watts, hi_watts / cb_watts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_ratios_match_paper_bands() {
        let ((c_lo, c_hi), (p_lo, p_hi)) = ratios(Media::Dram);
        // Paper: 1.1-1.5x cost, 1.9-2.7x power.
        assert!((1.05..=1.3).contains(&c_lo), "cost low {c_lo:.2}");
        assert!((1.3..=1.7).contains(&c_hi), "cost high {c_hi:.2}");
        assert!((1.7..=2.2).contains(&p_lo), "power low {p_lo:.2}");
        assert!((2.4..=3.1).contains(&p_hi), "power high {p_hi:.2}");
    }

    #[test]
    fn optane_widens_the_gap() {
        let ((c_lo, c_hi), (p_lo, p_hi)) = ratios(Media::Optane);
        let ((dc_lo, dc_hi), (dp_lo, dp_hi)) = ratios(Media::Dram);
        assert!(c_lo > dc_lo && c_hi > dc_hi, "optane cost ratios must grow");
        assert!(p_lo > dp_lo && p_hi > dp_hi, "optane power ratios must grow");
        // Paper: 1.4-2.5x and 5.1-8.6x.
        assert!((1.3..=1.8).contains(&c_lo), "optane cost low {c_lo:.2}");
        assert!((1.9..=2.8).contains(&c_hi), "optane cost high {c_hi:.2}");
        assert!((4.5..=9.5).contains(&p_lo) && p_hi > p_lo, "optane power {p_lo:.1}-{p_hi:.1}");
    }
}
