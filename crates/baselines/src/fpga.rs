//! FPGA resource accounting (paper Figure 22).
//!
//! The paper reports post-synthesis utilization of its ZCU106 (504 K LUTs,
//! 4.75 MB BRAM) for Clio's modules and two published FPGA network stacks.
//! We keep the same accounting structure — per-module LUT/BRAM budgets that
//! sum (with vendor IP) to the totals — so the comparison table can be
//! regenerated and extended.

/// One row of the utilization table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Module/system name.
    pub name: &'static str,
    /// Logic (LUT) utilization, percent of the ZCU106.
    pub lut_pct: f64,
    /// Memory (BRAM) utilization, percent.
    pub bram_pct: f64,
}

/// Clio's own modules (paper Figure 22, lower half).
pub fn clio_modules() -> Vec<Utilization> {
    vec![
        Utilization { name: "VirtMem", lut_pct: 5.5, bram_pct: 3.0 },
        Utilization { name: "NetStack", lut_pct: 2.3, bram_pct: 1.7 },
        Utilization { name: "Go-Back-N", lut_pct: 5.8, bram_pct: 2.6 },
    ]
}

/// Vendor IP (PHY, MAC, DDR4, interconnect) accounts for the rest of
/// Clio's total (§7.3: "the rest being vendor IPs").
pub fn clio_vendor_ip() -> Utilization {
    Utilization { name: "VendorIP", lut_pct: 17.4, bram_pct: 23.7 }
}

/// Clio's total utilization.
pub fn clio_total() -> Utilization {
    let (mut lut, mut bram) = (0.0, 0.0);
    for m in clio_modules() {
        lut += m.lut_pct;
        bram += m.bram_pct;
    }
    let v = clio_vendor_ip();
    Utilization { name: "Clio (Total)", lut_pct: lut + v.lut_pct, bram_pct: bram + v.bram_pct }
}

/// Published comparison points (paper Figure 22, upper half).
pub fn comparisons() -> Vec<Utilization> {
    vec![
        Utilization { name: "StRoM-RoCEv2", lut_pct: 39.0, bram_pct: 76.0 },
        Utilization { name: "Tonic-SACK", lut_pct: 48.0, bram_pct: 40.0 },
    ]
}

/// The complete Figure 22 table, top to bottom.
pub fn figure22() -> Vec<Utilization> {
    let mut rows = comparisons();
    rows.push(clio_total());
    rows.extend(clio_modules());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let t = clio_total();
        assert!((t.lut_pct - 31.0).abs() < 0.11, "paper reports 31% LUT, got {}", t.lut_pct);
        assert!((t.bram_pct - 31.0).abs() < 0.11, "paper reports 31% BRAM, got {}", t.bram_pct);
    }

    #[test]
    fn clio_uses_less_than_network_only_stacks() {
        let t = clio_total();
        for c in comparisons() {
            assert!(t.lut_pct < c.lut_pct, "{} should use more LUT than Clio", c.name);
            assert!(t.bram_pct < c.bram_pct, "{} should use more BRAM than Clio", c.name);
        }
    }

    #[test]
    fn table_has_all_rows() {
        let rows = figure22();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.name == "VirtMem"));
    }
}
