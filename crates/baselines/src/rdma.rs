//! The RDMA NIC model (paper §2.2's scalability analysis).
//!
//! An RNIC keeps three kinds of state that all live in a small on-NIC cache
//! backed by host memory across PCIe:
//!
//! * **QP contexts** — one per connection; reliable RDMA needs at least one
//!   QP per client process (Figure 4),
//! * **page-table entries** — host-VA translations (Figure 5 "PTE"),
//! * **memory-region metadata** — lkey/rkey state, at least one MR per
//!   protection domain (Figure 5 "MR"; Figure 16's cliff).
//!
//! A miss in any cache adds a PCIe round trip to host memory; a page fault
//! interrupts the host OS and costs ~16.8 **ms** (§2.2/§4.3). Registration
//! pins pages, costing milliseconds for large MRs (Figure 12). RNICs also
//! refuse more than 2^18 MRs outright (§7.1). This module models each
//! mechanism with real LRU caches so the figures' cliffs appear at the
//! right scale, not by curve fitting.

use clio_hw::tlb::{Tlb, TlbEntry};
use clio_proto::{Perm, Pid};
use clio_sim::resource::SerialResource;
use clio_sim::{Bandwidth, SimDuration, SimRng, SimTime};

/// Parameters of one RNIC generation.
#[derive(Debug, Clone)]
pub struct RnicParams {
    /// Marketing name for table output.
    pub name: &'static str,
    /// Base one-way NIC processing for a read (no misses).
    pub base_read: SimDuration,
    /// Base one-way NIC processing for a write.
    pub base_write: SimDuration,
    /// QP-context cache capacity (connections).
    pub qp_cache: usize,
    /// PTE cache capacity.
    pub pte_cache: usize,
    /// MR metadata cache capacity.
    pub mr_cache: usize,
    /// PCIe round trip for fetching evicted state from host memory.
    pub pcie_round_trip: SimDuration,
    /// Extra host-memory pressure per additional thrashing client (the
    /// slow linear climb of Figure 4 beyond the cache cliff).
    pub thrash_slope: SimDuration,
    /// Page-fault cost: NIC interrupt + host OS handling (§2.2: 16.8 ms).
    pub page_fault: SimDuration,
    /// Hard MR limit (≈2^18; registration beyond this fails).
    pub max_mrs: u64,
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// Probability an op hits host-side interference (tail events).
    pub jitter_prob: f64,
    /// Scale of host-interference delay when it hits.
    pub jitter_scale: SimDuration,
    /// MR registration: fixed software cost.
    pub mr_reg_base: SimDuration,
    /// MR registration: per-2 MB-huge-page pinning cost.
    pub mr_reg_per_page: SimDuration,
    /// Fraction of registration cost paid by deregistration.
    pub mr_dereg_factor: f64,
    /// On-demand-paging registration per-page cost (no pinning).
    pub mr_reg_per_page_odp: SimDuration,
}

impl RnicParams {
    /// The local testbed's ConnectX-3 (40 Gbps).
    pub fn connectx3() -> Self {
        RnicParams {
            name: "CX3",
            base_read: SimDuration::from_nanos(800),
            base_write: SimDuration::from_nanos(650),
            qp_cache: 256,
            pte_cache: 256, // degrades beyond 2^8 (§7.1 Figure 5, local cluster)
            mr_cache: 128,
            pcie_round_trip: SimDuration::from_nanos(900),
            thrash_slope: SimDuration::from_nanos(3600),
            page_fault: SimDuration::from_millis(16) + SimDuration::from_micros(800),
            max_mrs: 1 << 18,
            bandwidth: Bandwidth::from_gbps(40),
            jitter_prob: 0.0015,
            jitter_scale: SimDuration::from_micros(300),
            mr_reg_base: SimDuration::from_micros(35),
            mr_reg_per_page: SimDuration::from_nanos(5200),
            mr_dereg_factor: 0.75,
            mr_reg_per_page_odp: SimDuration::from_nanos(700),
        }
    }

    /// CloudLab's ConnectX-5 (bigger caches, same cliffs later — §7.1).
    pub fn connectx5() -> Self {
        RnicParams {
            name: "CX5",
            base_read: SimDuration::from_nanos(700),
            base_write: SimDuration::from_nanos(550),
            qp_cache: 512,
            pte_cache: 4096, // degrades beyond 2^12 on CloudLab
            mr_cache: 3000,
            thrash_slope: SimDuration::from_nanos(2600),
            ..Self::connectx3()
        }
    }
}

/// Per-operation latency attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdmaCost {
    /// NIC processing + serialization + queueing.
    pub nic: SimDuration,
    /// PCIe crossings for QP/PTE/MR cache misses.
    pub cache_misses: SimDuration,
    /// Host OS page-fault handling.
    pub page_fault: SimDuration,
    /// Host interference (tail events).
    pub jitter: SimDuration,
}

impl RdmaCost {
    /// Total service time at the NIC/host.
    pub fn total(&self) -> SimDuration {
        self.nic + self.cache_misses + self.page_fault + self.jitter
    }
}

/// Which verb is being executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// One-sided RDMA read.
    Read,
    /// One-sided RDMA write.
    Write,
}

/// The RNIC of a server-based memory node.
#[derive(Debug)]
pub struct RdmaNic {
    params: RnicParams,
    qp_cache: Tlb,
    pte_cache: Tlb,
    mr_cache: Tlb,
    registered_mrs: u64,
    faulted_pages: std::collections::HashSet<(Pid, u64)>,
    pin_pages: bool,
    engine: SerialResource,
    stats: RdmaStats,
}

/// Counters for harness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdmaStats {
    /// Operations served.
    pub ops: u64,
    /// QP-context cache misses.
    pub qp_misses: u64,
    /// PTE cache misses.
    pub pte_misses: u64,
    /// MR cache misses.
    pub mr_misses: u64,
    /// Page faults taken.
    pub page_faults: u64,
}

impl RdmaNic {
    /// A NIC with the given generation parameters. `pin_pages` reflects the
    /// common deployment practice (§2.2): pinned MRs never fault but waste
    /// memory; unpinned (ODP) MRs fault on first touch.
    pub fn new(params: RnicParams, pin_pages: bool) -> Self {
        RdmaNic {
            qp_cache: Tlb::new(params.qp_cache),
            pte_cache: Tlb::new(params.pte_cache),
            mr_cache: Tlb::new(params.mr_cache),
            registered_mrs: 0,
            faulted_pages: std::collections::HashSet::new(),
            pin_pages,
            engine: SerialResource::new(),
            params,
            stats: RdmaStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &RnicParams {
        &self.params
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RdmaStats {
        self.stats
    }

    /// Registers an MR of `bytes`, returning the registration latency.
    ///
    /// # Errors
    ///
    /// Fails (like real RNICs, §7.1) beyond the MR limit.
    pub fn register_mr(&mut self, bytes: u64) -> Result<SimDuration, &'static str> {
        if self.registered_mrs >= self.params.max_mrs {
            return Err("RNIC out of memory-region resources");
        }
        self.registered_mrs += 1;
        let pages = bytes.div_ceil(2 << 20); // huge pages, the common practice
        let per_page = if self.pin_pages {
            self.params.mr_reg_per_page
        } else {
            self.params.mr_reg_per_page_odp
        };
        Ok(self.params.mr_reg_base + per_page * pages)
    }

    /// Deregisters an MR, returning the latency.
    pub fn deregister_mr(&mut self, bytes: u64) -> SimDuration {
        self.registered_mrs = self.registered_mrs.saturating_sub(1);
        let pages = bytes.div_ceil(2 << 20);
        let per_page = if self.pin_pages {
            self.params.mr_reg_per_page
        } else {
            self.params.mr_reg_per_page_odp
        };
        (self.params.mr_reg_base + per_page * pages).mul_f64(self.params.mr_dereg_factor)
    }

    /// Number of currently registered MRs.
    pub fn registered_mrs(&self) -> u64 {
        self.registered_mrs
    }

    /// Executes one verb and returns `(completion_time, cost)`.
    ///
    /// `qp` identifies the issuing connection, `mr` the target region, and
    /// `vpn` the page touched. `active_qps` is the number of live
    /// connections (drives host-side thrash pressure beyond the cache
    /// cliff).
    #[allow(clippy::too_many_arguments)] // mirrors the verb descriptor
    pub fn execute(
        &mut self,
        rng: &mut SimRng,
        now: SimTime,
        verb: Verb,
        qp: u64,
        mr: u64,
        vpn: u64,
        bytes: u64,
        active_qps: u64,
    ) -> (SimTime, RdmaCost) {
        let mut cost = RdmaCost::default();
        self.stats.ops += 1;
        let entry = TlbEntry { ppn: 0, perm: Perm::RW };

        if self.qp_cache.lookup(Pid(0), qp).is_none() {
            self.stats.qp_misses += 1;
            self.qp_cache.insert(Pid(0), qp, entry);
            cost.cache_misses += self.params.pcie_round_trip;
            // Host-side context pressure grows with the live-connection
            // count (the linear climb of Figure 4).
            let over = active_qps.saturating_sub(self.params.qp_cache as u64);
            if over > 0 {
                cost.cache_misses += self.params.thrash_slope.mul_f64(over as f64 / 1000.0);
            }
        }
        if self.mr_cache.lookup(Pid(1), mr).is_none() {
            self.stats.mr_misses += 1;
            self.mr_cache.insert(Pid(1), mr, entry);
            // MR metadata validation is two dependent host reads — and with
            // the MR state evicted, the NIC must re-validate the rkey for
            // every wire chunk of the transfer, stalling the DMA pipeline
            // (this is what makes Figure 16's large transfers collapse once
            // per-client MRs overflow the cache).
            cost.cache_misses += self.params.pcie_round_trip * 2;
            cost.cache_misses +=
                self.params.pcie_round_trip * bytes.div_ceil(512).saturating_sub(1);
        }
        if self.pte_cache.lookup(Pid(2), vpn).is_none() {
            self.stats.pte_misses += 1;
            self.pte_cache.insert(Pid(2), vpn, entry);
            cost.cache_misses += self.params.pcie_round_trip;
        }
        if !self.pin_pages && self.faulted_pages.insert((Pid(2), vpn)) {
            self.stats.page_faults += 1;
            cost.page_fault = self.params.page_fault;
        }

        let base = match verb {
            Verb::Read => self.params.base_read,
            Verb::Write => self.params.base_write,
        };
        let service = base + self.params.bandwidth.transfer_time(bytes);
        let r = self.engine.reserve(now, service + cost.cache_misses + cost.page_fault);
        cost.nic = service + r.queue_wait(now);

        if rng.chance(self.params.jitter_prob) {
            cost.jitter = self.params.jitter_scale.mul_f64(0.2 + rng.f64() * 1.8);
        }
        (r.end + cost.jitter, cost)
    }

    /// Pre-faults a page (what pinned registration does at setup time).
    pub fn prefault(&mut self, vpn: u64) {
        self.faulted_pages.insert((Pid(2), vpn));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> (RdmaNic, SimRng) {
        (RdmaNic::new(RnicParams::connectx3(), true), SimRng::new(9))
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn warm_path_is_microsecond_scale() {
        let (mut nic, mut rng) = nic();
        // Warm all caches, then measure after the engine drains.
        nic.execute(&mut rng, t0(), Verb::Read, 1, 1, 1, 16, 1);
        let later = SimTime::from_nanos(100_000);
        let (_, cost) = nic.execute(&mut rng, later, Verb::Read, 1, 1, 1, 16, 1);
        assert_eq!(cost.cache_misses, SimDuration::ZERO);
        assert!(cost.total() < SimDuration::from_micros(2), "warm cost {:?}", cost.total());
    }

    #[test]
    fn qp_thrash_beyond_cache() {
        let (mut nic, mut rng) = nic();
        let n = 1000u64;
        // Round-robin over 1000 QPs with a 256-entry cache: every access
        // misses after warm-up.
        for round in 0..3 {
            for qp in 0..n {
                let (_, c) = nic.execute(&mut rng, t0(), Verb::Read, qp, 1, 1, 16, n);
                if round > 0 {
                    assert!(c.cache_misses > SimDuration::ZERO, "qp {qp} should miss");
                }
            }
        }
        let few_qp_cost = {
            let (mut fresh, mut rng2) = self::nic();
            fresh.execute(&mut rng2, t0(), Verb::Read, 1, 1, 1, 16, 1);
            let (_, c) = fresh.execute(&mut rng2, t0(), Verb::Read, 1, 1, 1, 16, 1);
            c.total()
        };
        let (_, thrashed) = nic.execute(&mut rng, t0(), Verb::Read, 5, 1, 1, 16, n);
        assert!(
            thrashed.total() > few_qp_cost + SimDuration::from_micros(2),
            "expected multi-us penalty: {:?} vs {:?}",
            thrashed.total(),
            few_qp_cost
        );
    }

    #[test]
    fn page_fault_costs_milliseconds_without_pinning() {
        let mut nic = RdmaNic::new(RnicParams::connectx3(), false);
        let mut rng = SimRng::new(1);
        let (_, c) = nic.execute(&mut rng, t0(), Verb::Write, 1, 1, 42, 16, 1);
        assert!(c.page_fault >= SimDuration::from_millis(16));
        // Second touch: no fault.
        let (_, c2) = nic.execute(&mut rng, t0(), Verb::Write, 1, 1, 42, 16, 1);
        assert_eq!(c2.page_fault, SimDuration::ZERO);
        assert_eq!(nic.stats().page_faults, 1);
    }

    #[test]
    fn mr_limit_enforced() {
        let mut params = RnicParams::connectx3();
        params.max_mrs = 2;
        let mut nic = RdmaNic::new(params, true);
        assert!(nic.register_mr(4096).is_ok());
        assert!(nic.register_mr(4096).is_ok());
        assert!(nic.register_mr(4096).is_err(), "third MR must fail");
        nic.deregister_mr(4096);
        assert!(nic.register_mr(4096).is_ok());
    }

    #[test]
    fn registration_cost_scales_with_size() {
        let (mut nic, _) = nic();
        let small = nic.register_mr(4 << 20).expect("reg");
        let large = nic.register_mr(1424 << 20).expect("reg");
        assert!(large > small * 20, "pinning must scale: {small} vs {large}");
        assert!(large > SimDuration::from_millis(3), "1424 MB reg should be ms-scale: {large}");
        // ODP is much cheaper.
        let mut odp = RdmaNic::new(RnicParams::connectx3(), false);
        let odp_large = odp.register_mr(1424 << 20).expect("reg");
        assert!(odp_large < large / 4);
    }

    #[test]
    fn serial_engine_queues_concurrent_ops() {
        let (mut nic, mut rng) = nic();
        nic.execute(&mut rng, t0(), Verb::Read, 1, 1, 1, 16, 1);
        let (end_a, _) = nic.execute(&mut rng, t0(), Verb::Read, 1, 1, 1, 1 << 20, 1);
        let (end_b, _) = nic.execute(&mut rng, t0(), Verb::Read, 1, 1, 1, 16, 1);
        assert!(end_b > end_a, "second op queues behind the 1 MB transfer");
    }

    #[test]
    fn writes_slightly_faster_than_reads() {
        let p = RnicParams::connectx3();
        assert!(p.base_write < p.base_read);
        let p5 = RnicParams::connectx5();
        assert!(p5.base_read < p.base_read, "newer NIC is faster");
    }
}
