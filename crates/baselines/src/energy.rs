//! Energy accounting (paper §7.3, Figure 21).
//!
//! The paper measures total energy for a fixed YCSB workload by summing
//! (component power × busy time), split between the memory-node side and
//! the compute-node side, omitting DRAM and NIC draw. We reproduce the
//! same accounting: each platform has MN-side and CN-side power constants;
//! busy time comes from the modeled runtime of the workload.

use clio_sim::SimDuration;

/// Power profile of one system under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Display name.
    pub name: &'static str,
    /// Memory-node-side active power (W): FPGA+ARM for Clio, none for
    /// Clover (its MN has no processing), server CPU cores for HERD,
    /// BlueField SoC for HERD-BF.
    pub mn_watts: f64,
    /// CN-side active power (W) attributable to the workload's client
    /// processing (polling threads, CN-side management).
    pub cn_watts: f64,
}

/// Clio's CBoard: measured FPGA (§7.3) + A53 complex.
pub const CLIO: PowerProfile = PowerProfile { name: "Clio", mn_watts: 13.0, cn_watts: 35.0 };

/// Clover: passive MN (no processing), but heavier CN-side management
/// ("its CNs use more cycles to process and manage memory", §7.3).
pub const CLOVER: PowerProfile = PowerProfile { name: "Clover", mn_watts: 0.0, cn_watts: 60.0 };

/// HERD: dedicated server CPU cores busy-polling at the MN.
pub const HERD: PowerProfile = PowerProfile { name: "HERD", mn_watts: 90.0, cn_watts: 35.0 };

/// HERD on BlueField: a low-power ARM SoC — but long runtimes (§7.3:
/// "HERD-BF consumes the most energy ... because of its worse performance
/// and longer total runtime").
pub const HERD_BF: PowerProfile = PowerProfile { name: "HERD-BF", mn_watts: 25.0, cn_watts: 35.0 };

/// Energy of a run, split by side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// System name.
    pub name: &'static str,
    /// MN-side energy per request (millijoules).
    pub mn_mj_per_req: f64,
    /// CN-side energy per request (millijoules).
    pub cn_mj_per_req: f64,
}

impl EnergyReport {
    /// Total energy per request (mJ).
    pub fn total_mj(&self) -> f64 {
        self.mn_mj_per_req + self.cn_mj_per_req
    }
}

/// Computes energy/request for a workload of `requests` taking `runtime`.
pub fn energy_per_request(
    profile: PowerProfile,
    runtime: SimDuration,
    requests: u64,
) -> EnergyReport {
    assert!(requests > 0, "energy per request over zero requests");
    let secs = runtime.as_secs_f64();
    let per = 1e3 / requests as f64; // J -> mJ per request
    EnergyReport {
        name: profile.name,
        mn_mj_per_req: profile.mn_watts * secs * per,
        cn_mj_per_req: profile.cn_watts * secs * per,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_systems_use_less_energy() {
        // Same request count; HERD-BF takes 4x longer.
        let clio = energy_per_request(CLIO, SimDuration::from_secs(10), 1_000_000);
        let bf = energy_per_request(HERD_BF, SimDuration::from_secs(40), 1_000_000);
        assert!(bf.total_mj() > clio.total_mj(), "slow + powered = most energy");
    }

    #[test]
    fn herd_burns_mn_cpu() {
        let herd = energy_per_request(HERD, SimDuration::from_secs(10), 1_000_000);
        let clio = energy_per_request(CLIO, SimDuration::from_secs(10), 1_000_000);
        let ratio = herd.total_mj() / clio.total_mj();
        assert!((1.6..=3.5).contains(&ratio), "paper reports 1.6-3x: got {ratio:.2}");
    }

    #[test]
    fn clover_shifts_energy_to_cns() {
        let clover = energy_per_request(CLOVER, SimDuration::from_secs(12), 1_000_000);
        assert_eq!(clover.mn_mj_per_req, 0.0);
        assert!(clover.cn_mj_per_req > 0.0);
    }
}
