//! HERD — RPC-style key-value serving over RDMA (paper citation 36), plus the
//! BlueField SmartNIC variant (paper §7's HERD-BF).
//!
//! HERD clients write requests into server memory with unreliable-connected
//! RDMA writes; server CPU cores busy-poll the request region, execute the
//! operation, and answer with an unreliable datagram send. Latency is one
//! network RTT plus CPU service (and queueing under load). On BlueField,
//! the "server" is the SmartNIC's ARM complex: every request crosses from
//! the NIC chip to the ARM chip and back, which the paper measures as the
//! dominant cost (§7.1: "HERD-BF's latency is much higher ... due to the
//! slow communication between BlueField's ConnectX-5 chip and ARM processor
//! chip").

use clio_sim::resource::ServerPool;
use clio_sim::{Bandwidth, SimDuration, SimRng, SimTime};

/// Parameters of a HERD deployment.
#[derive(Debug, Clone)]
pub struct HerdParams {
    /// Display name.
    pub name: &'static str,
    /// One-way network latency CN → server NIC.
    pub network_one_way: SimDuration,
    /// NIC processing per packet.
    pub nic_overhead: SimDuration,
    /// CPU service time per KV operation.
    pub cpu_service: SimDuration,
    /// Polling cores serving requests.
    pub cores: usize,
    /// Extra chip-to-chip crossing each way (BlueField only).
    pub crossing: SimDuration,
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// Host jitter probability (GC, scheduler, ...).
    pub jitter_prob: f64,
    /// Host jitter scale.
    pub jitter_scale: SimDuration,
}

impl HerdParams {
    /// HERD on a Xeon server (paper's HERD bars).
    pub fn on_cpu() -> Self {
        HerdParams {
            name: "HERD",
            network_one_way: SimDuration::from_nanos(600),
            nic_overhead: SimDuration::from_nanos(500),
            cpu_service: SimDuration::from_nanos(400),
            cores: 8,
            crossing: SimDuration::ZERO,
            bandwidth: Bandwidth::from_gbps(40),
            jitter_prob: 0.002,
            jitter_scale: SimDuration::from_micros(200),
        }
    }

    /// HERD on the BlueField SmartNIC (paper's HERD-BF bars): slower ARM
    /// cores and a costly NIC-chip ↔ ARM-chip crossing in each direction.
    pub fn on_bluefield() -> Self {
        HerdParams {
            name: "HERD-BF",
            cpu_service: SimDuration::from_micros(1),
            cores: 4,
            crossing: SimDuration::from_nanos(2300),
            jitter_prob: 0.004,
            jitter_scale: SimDuration::from_micros(400),
            ..Self::on_cpu()
        }
    }
}

/// The HERD server model.
#[derive(Debug)]
pub struct HerdModel {
    params: HerdParams,
    cpu: ServerPool,
    ops: u64,
}

impl HerdModel {
    /// Builds a server with the given parameters.
    pub fn new(params: HerdParams) -> Self {
        HerdModel { cpu: ServerPool::new(params.cores), params, ops: 0 }
    }

    /// The configured parameters.
    pub fn params(&self) -> &HerdParams {
        &self.params
    }

    /// Operations served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// One KV request (`bytes` of payload in the larger direction);
    /// returns completion time.
    pub fn request(&mut self, rng: &mut SimRng, now: SimTime, bytes: u64) -> SimTime {
        self.ops += 1;
        let p = &self.params;
        let transfer = p.bandwidth.transfer_time(bytes);
        // Request path: wire + NIC (+ crossing onto the ARM for BF).
        let at_cpu = now + p.network_one_way + p.nic_overhead + p.crossing + transfer;
        let served = self.cpu.reserve(at_cpu, p.cpu_service);
        // Response path.
        let mut done = served.end + p.crossing + p.nic_overhead + p.network_one_way;
        if rng.chance(p.jitter_prob) {
            done += p.jitter_scale.mul_f64(0.2 + rng.f64() * 1.8);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bluefield_is_much_slower_than_cpu() {
        let mut cpu = HerdModel::new(HerdParams::on_cpu());
        let mut bf = HerdModel::new(HerdParams::on_bluefield());
        let mut rng = SimRng::new(2);
        let t0 = SimTime::ZERO;
        let cpu_lat = cpu.request(&mut rng, t0, 1024).since(t0);
        let bf_lat = bf.request(&mut rng, t0, 1024).since(t0);
        assert!(bf_lat > cpu_lat * 2, "BF must be >2x slower: {bf_lat} vs {cpu_lat}");
        assert!(cpu_lat < SimDuration::from_micros(5), "HERD ~RPC latency: {cpu_lat}");
        assert!(bf_lat > SimDuration::from_micros(4), "BF crossing dominates: {bf_lat}");
    }

    #[test]
    fn cpu_queueing_under_load() {
        let mut m = HerdModel::new(HerdParams { cores: 1, ..HerdParams::on_cpu() });
        let mut rng = SimRng::new(3);
        let t0 = SimTime::ZERO;
        let first = m.request(&mut rng, t0, 64);
        let mut last = first;
        for _ in 0..50 {
            last = m.request(&mut rng, t0, 64);
        }
        assert!(last > first, "single core must queue 51 simultaneous requests");
        assert_eq!(m.ops(), 51);
    }
}
