//! Clover — passive disaggregated (key-value) memory (paper §2.3, citation 75).
//!
//! Clover's memory nodes have **no processing power**: clients manage
//! everything through one-sided RDMA. Reads traverse the client-cached
//! index then fetch data (1 RTT in the common case); writes must first
//! write the data block, then atomically link it into the metadata chain —
//! **at least 2 RTTs** — to provide consistency without MN-side logic
//! (Figure 11's "Clover requires ≥ 2 RTTs for write"). CN-side management
//! also burns client CPU cycles, which Figure 21's energy accounting
//! captures.

use clio_sim::{SimDuration, SimRng, SimTime};

use crate::rdma::{RdmaNic, RnicParams, Verb};

/// Latency model of a Clover deployment (client library + passive MN).
#[derive(Debug)]
pub struct CloverModel {
    nic: RdmaNic,
    /// One-way network latency between CN and the passive MN.
    pub network_one_way: SimDuration,
    /// Client-side cycles spent managing metadata per op.
    pub client_overhead: SimDuration,
    /// Average extra index hops per read when the cache is cold/contended.
    pub read_index_misses: f64,
}

impl CloverModel {
    /// A Clover instance over the given RNIC generation.
    pub fn new(params: RnicParams) -> Self {
        CloverModel {
            nic: RdmaNic::new(params, true),
            network_one_way: SimDuration::from_nanos(600),
            client_overhead: SimDuration::from_nanos(350),
            read_index_misses: 0.15,
        }
    }

    fn rtt(&mut self, rng: &mut SimRng, now: SimTime, verb: Verb, key: u64, bytes: u64) -> SimTime {
        let (end, _cost) =
            self.nic.execute(rng, now + self.network_one_way, verb, 1, key % 64, key, bytes, 64);
        end + self.network_one_way
    }

    /// A get: index lookup (usually cached) + data fetch.
    pub fn get(&mut self, rng: &mut SimRng, now: SimTime, key: u64, value_bytes: u64) -> SimTime {
        let mut t = now + self.client_overhead;
        if rng.chance(self.read_index_misses) {
            // Chase one extra chain pointer.
            t = self.rtt(rng, t, Verb::Read, key, 64);
        }
        self.rtt(rng, t, Verb::Read, key, value_bytes)
    }

    /// A put: write the new block, then link it with an atomic — 2 RTTs
    /// minimum.
    pub fn put(&mut self, rng: &mut SimRng, now: SimTime, key: u64, value_bytes: u64) -> SimTime {
        let t = now + self.client_overhead;
        let t = self.rtt(rng, t, Verb::Write, key, value_bytes);
        // Metadata link: small atomic write to the chain.
        self.rtt(rng, t + self.client_overhead, Verb::Write, key ^ 0xFFFF, 64)
    }

    /// The underlying NIC (stats).
    pub fn nic(&self) -> &RdmaNic {
        &self.nic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_cost_at_least_two_rtts() {
        let mut m = CloverModel::new(RnicParams::connectx3());
        let mut rng = SimRng::new(4);
        // Warm up.
        let t0 = SimTime::ZERO;
        m.get(&mut rng, t0, 1, 64);
        m.put(&mut rng, t0, 1, 64);
        let mut get_total = SimDuration::ZERO;
        let mut put_total = SimDuration::ZERO;
        let mut t = SimTime::from_nanos(1_000_000);
        for i in 0..50 {
            let e = m.get(&mut rng, t, i % 4, 64);
            get_total += e.since(t);
            t = e + SimDuration::from_micros(5);
            let e = m.put(&mut rng, t, i % 4, 64);
            put_total += e.since(t);
            t = e + SimDuration::from_micros(5);
        }
        assert!(
            put_total > get_total.mul_f64(1.5),
            "puts must be ≥~2x gets: {put_total} vs {get_total}"
        );
    }
}
