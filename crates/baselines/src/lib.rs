//! # clio-baselines — every system the paper compares Clio against
//!
//! Behavioral models of the comparison points in §7, built on the same
//! simulation substrate so the evaluation isolates memory-node architecture:
//!
//! * [`rdma`] — the RNIC model (ConnectX-3 / ConnectX-5 parameter sets):
//!   QP-context, PTE and MR caches with PCIe-crossing miss penalties, host
//!   interrupt page faults (16.8 ms), MR registration/pinning costs, the
//!   2^18 MR limit, and host-jitter tails. These cache cliffs are the
//!   documented causes of Figures 4–6 and 12,
//! * [`clover`] — passive disaggregated memory (PDM): no MN processing, so
//!   writes take ≥ 2 network round trips (§2.3, Figures 11/18),
//! * [`herd`] — RPC-over-RDMA key-value serving on server CPUs, plus the
//!   BlueField SmartNIC variant with its NIC-chip↔ARM crossing (Figures
//!   10/11/18),
//! * [`legoos`] — a software virtual-memory memory node (thread pool + hash
//!   lookup per request, 77 Gbps ceiling — §2.2, §7.1),
//! * [`energy`] — power/energy accounting behind Figure 21,
//! * [`fpga`] — the FPGA resource-utilization comparison of Figure 22,
//! * [`capex`] — the §7.3 CapEx/power cost model.
//!
//! Each model exposes per-operation latency/throughput computations driven
//! by explicit cache and queue state, so scalability figures emerge from the
//! modeled *mechanisms* (cache thrash, host crossings), not fitted curves.

pub mod capex;
pub mod clover;
pub mod energy;
pub mod fpga;
pub mod herd;
pub mod legoos;
pub mod rdma;

pub use rdma::{RdmaNic, RnicParams};
