//! LegoOS — a software memory node (paper §2.2, citation 64).
//!
//! LegoOS's mComponent performs the same VA→PA translation as Clio but in
//! **software**: a thread pool picks incoming requests off the RDMA stack
//! and walks a hash table per access. That software step is the bottleneck
//! the paper measures: roughly 2× Clio's latency for small requests and a
//! 77 Gbps throughput ceiling vs. Clio's 110+ (§7.1).

use clio_sim::resource::ServerPool;
use clio_sim::{Bandwidth, SimDuration, SimRng, SimTime};

/// Parameters of the LegoOS memory-node model.
#[derive(Debug, Clone)]
pub struct LegoOsParams {
    /// One-way network latency (RDMA-based transport).
    pub network_one_way: SimDuration,
    /// NIC processing per message.
    pub nic_overhead: SimDuration,
    /// Software translation + dispatch cost per request.
    pub sw_translation: SimDuration,
    /// Worker threads in the memory node.
    pub workers: usize,
    /// Per-byte memory copy bandwidth in software.
    pub copy_bandwidth: Bandwidth,
    /// Aggregate throughput ceiling (§7.1: 77 Gbps peak).
    pub throughput_ceiling: Bandwidth,
    /// Host jitter probability.
    pub jitter_prob: f64,
    /// Host jitter scale.
    pub jitter_scale: SimDuration,
}

impl Default for LegoOsParams {
    fn default() -> Self {
        LegoOsParams {
            network_one_way: SimDuration::from_nanos(600),
            nic_overhead: SimDuration::from_nanos(400),
            sw_translation: SimDuration::from_nanos(1500),
            workers: 8,
            copy_bandwidth: Bandwidth::from_gigabytes_per_sec(12),
            throughput_ceiling: Bandwidth::from_gbps(77),
            jitter_prob: 0.002,
            jitter_scale: SimDuration::from_micros(150),
        }
    }
}

/// The LegoOS memory-node model.
#[derive(Debug)]
pub struct LegoOsModel {
    params: LegoOsParams,
    workers: ServerPool,
    line: clio_sim::resource::SerialResource,
    ops: u64,
}

impl LegoOsModel {
    /// Builds a memory node with the given parameters.
    pub fn new(params: LegoOsParams) -> Self {
        LegoOsModel {
            workers: ServerPool::new(params.workers),
            line: clio_sim::resource::SerialResource::new(),
            params,
            ops: 0,
        }
    }

    /// Default-parameter model.
    pub fn default_model() -> Self {
        Self::new(LegoOsParams::default())
    }

    /// Operations served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// One remote memory access of `bytes`; returns completion time.
    pub fn access(&mut self, rng: &mut SimRng, now: SimTime, bytes: u64) -> SimTime {
        self.ops += 1;
        let p = &self.params;
        // The 77 Gbps ceiling: all traffic serializes through the software
        // receive path.
        let line = self.line.reserve(now, p.throughput_ceiling.transfer_time(bytes.max(64)));
        let at_node = line.end + p.network_one_way + p.nic_overhead;
        let service = p.sw_translation + p.copy_bandwidth.transfer_time(bytes);
        let served = self.workers.reserve(at_node, service);
        let mut done = served.end + p.nic_overhead + p.network_one_way;
        if rng.chance(p.jitter_prob) {
            done += p.jitter_scale.mul_f64(0.2 + rng.f64() * 1.8);
        }
        done
    }

    /// Peak goodput of the node (for the Figure 9/§7.1 comparison).
    pub fn peak_goodput(&self) -> Bandwidth {
        self.params.throughput_ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominated_by_software_translation() {
        let mut m = LegoOsModel::default_model();
        let mut rng = SimRng::new(7);
        let t0 = SimTime::ZERO;
        let lat = m.access(&mut rng, t0, 16).since(t0);
        // ~2 one-way nets + NIC + sw translation: several microseconds.
        assert!(
            lat >= SimDuration::from_micros(3) && lat <= SimDuration::from_micros(8),
            "LegoOS 16B latency {lat}"
        );
    }

    #[test]
    fn throughput_ceiling_holds() {
        let mut m = LegoOsModel::default_model();
        let mut rng = SimRng::new(7);
        let t0 = SimTime::ZERO;
        let mut done = t0;
        let bytes_each = 64 << 10;
        let n = 200u64;
        for _ in 0..n {
            done = done.max(m.access(&mut rng, t0, bytes_each));
        }
        let gbps = (n * bytes_each * 8) as f64 / done.since(t0).as_secs_f64() / 1e9;
        assert!(gbps <= 78.0, "goodput {gbps:.1} exceeds the ceiling");
        assert!(gbps > 60.0, "goodput {gbps:.1} far below the ceiling");
    }
}
