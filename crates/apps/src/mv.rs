//! Clio-MV: the multi-version object store offload (paper §6).
//!
//! Users create objects, append new versions, and read any version (or the
//! latest). Per the paper, versions of each object live in an array (so
//! reading any version costs the same — Figure 19's flat lines), an id map
//! holds per-object array addresses, and a free list recycles object ids.
//! Per-object access is sequentially consistent because the offload executes
//! one call at a time in arrival order (§6: the fast/slow paths' sequential
//! delivery is sufficient).

use bytes::{BufMut, Bytes, BytesMut};
use clio_mn::{Offload, OffloadEnv, OffloadReply};
use clio_proto::{Perm, Status};
use clio_sim::Cycles;

/// Operation codes of the offload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvOpcode {
    /// Create a new object; returns its id (u64).
    Create = 0,
    /// Append a version; arg = id (u64) + value bytes; returns the version.
    Append = 1,
    /// Read version `v`; arg = id + version (u64::MAX = latest).
    Read = 2,
    /// Delete an object; arg = id.
    Delete = 3,
}

/// Fixed per-object version capacity (paper's arrays are preallocated).
const MAX_VERSIONS: u64 = 64;

/// Clio-MV offload state.
#[derive(Debug)]
pub struct ClioMv {
    value_size: u64,
    max_objects: u64,
    /// VA of the id map: per object `(array_va u64, latest u64)`; 0 = free.
    map_va: u64,
    free_list: Vec<u64>,
    next_unused: u64,
    creates: u64,
    appends: u64,
    reads: u64,
}

impl ClioMv {
    /// A store for up to `max_objects` objects of `value_size`-byte
    /// versions.
    pub fn new(max_objects: u64, value_size: u64) -> Self {
        ClioMv {
            value_size,
            max_objects,
            map_va: 0,
            free_list: Vec::new(),
            next_unused: 0,
            creates: 0,
            appends: 0,
            reads: 0,
        }
    }

    /// `(creates, appends, reads)` served.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.creates, self.appends, self.reads)
    }

    fn ensure_init(&mut self, env: &mut OffloadEnv<'_>) -> Result<(), Status> {
        if self.map_va == 0 {
            self.map_va = env.alloc(self.max_objects * 16, Perm::RW)?;
        }
        Ok(())
    }

    fn create(&mut self, env: &mut OffloadEnv<'_>) -> OffloadReply {
        self.creates += 1;
        let id = match self.free_list.pop() {
            Some(id) => id,
            None => {
                if self.next_unused >= self.max_objects {
                    return OffloadReply::err(Status::OutOfVirtualMemory);
                }
                let id = self.next_unused;
                self.next_unused += 1;
                id
            }
        };
        let arr = match env.alloc(MAX_VERSIONS * self.value_size, Perm::RW) {
            Ok(va) => va,
            Err(s) => return OffloadReply::err(s),
        };
        let r = env
            .write_u64(self.map_va + id * 16, arr)
            .and_then(|()| env.write_u64(self.map_va + id * 16 + 8, 0));
        match r {
            Ok(()) => {
                let mut b = BytesMut::new();
                b.put_u64_le(id);
                OffloadReply::ok(b.freeze())
            }
            Err(s) => OffloadReply::err(s),
        }
    }

    fn object(&self, env: &mut OffloadEnv<'_>, id: u64) -> Result<(u64, u64), Status> {
        if id >= self.max_objects {
            return Err(Status::InvalidAddr);
        }
        let arr = env.read_u64(self.map_va + id * 16)?;
        if arr == 0 {
            return Err(Status::InvalidAddr);
        }
        let latest = env.read_u64(self.map_va + id * 16 + 8)?;
        Ok((arr, latest))
    }

    fn append(&mut self, env: &mut OffloadEnv<'_>, id: u64, value: &[u8]) -> OffloadReply {
        self.appends += 1;
        let r = (|| -> Result<u64, Status> {
            let (arr, latest) = self.object(env, id)?;
            let version = latest + 1;
            if version > MAX_VERSIONS {
                return Err(Status::OutOfVirtualMemory);
            }
            let mut val = value.to_vec();
            val.resize(self.value_size as usize, 0);
            env.write(arr + (version - 1) * self.value_size, &val)?;
            env.write_u64(self.map_va + id * 16 + 8, version)?;
            Ok(version)
        })();
        match r {
            Ok(v) => {
                let mut b = BytesMut::new();
                b.put_u64_le(v);
                OffloadReply::ok(b.freeze())
            }
            Err(s) => OffloadReply::err(s),
        }
    }

    fn read(&mut self, env: &mut OffloadEnv<'_>, id: u64, version: u64) -> OffloadReply {
        self.reads += 1;
        let r = (|| -> Result<Bytes, Status> {
            let (arr, latest) = self.object(env, id)?;
            let version = if version == u64::MAX { latest } else { version };
            if version == 0 || version > latest {
                return Err(Status::InvalidAddr);
            }
            env.read(arr + (version - 1) * self.value_size, self.value_size as u32)
        })();
        match r {
            Ok(data) => OffloadReply::ok(data),
            Err(s) => OffloadReply::err(s),
        }
    }

    fn delete(&mut self, env: &mut OffloadEnv<'_>, id: u64) -> OffloadReply {
        let r = (|| -> Result<(), Status> {
            self.object(env, id)?; // existence check
            env.write_u64(self.map_va + id * 16, 0)?;
            env.write_u64(self.map_va + id * 16 + 8, 0)?;
            self.free_list.push(id);
            Ok(())
        })();
        match r {
            Ok(()) => OffloadReply::ok(Bytes::new()),
            Err(s) => OffloadReply::err(s),
        }
    }
}

impl Offload for ClioMv {
    fn name(&self) -> &str {
        "clio-mv"
    }

    fn on_call(&mut self, env: &mut OffloadEnv<'_>, opcode: u16, arg: Bytes) -> OffloadReply {
        if self.ensure_init(env).is_err() {
            return OffloadReply::err(Status::OutOfVirtualMemory);
        }
        env.compute(Cycles(8));
        let u64_at = |off: usize| -> Option<u64> {
            arg.get(off..off + 8).map(|s| u64::from_le_bytes(s.try_into().expect("8 B")))
        };
        match opcode {
            x if x == MvOpcode::Create as u16 => self.create(env),
            x if x == MvOpcode::Append as u16 => match u64_at(0) {
                Some(id) => self.append(env, id, &arg[8..]),
                None => OffloadReply::err(Status::Unsupported),
            },
            x if x == MvOpcode::Read as u16 => match (u64_at(0), u64_at(8)) {
                (Some(id), Some(v)) => self.read(env, id, v),
                _ => OffloadReply::err(Status::Unsupported),
            },
            x if x == MvOpcode::Delete as u16 => match u64_at(0) {
                Some(id) => self.delete(env, id),
                None => OffloadReply::err(Status::Unsupported),
            },
            _ => OffloadReply::err(Status::Unsupported),
        }
    }
}

/// Encodes an append argument.
pub fn encode_append(id: u64, value: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(8 + value.len());
    b.put_u64_le(id);
    b.put_slice(value);
    b.freeze()
}

/// Encodes a read argument (`u64::MAX` = latest version).
pub fn encode_read(id: u64, version: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_u64_le(id);
    b.put_u64_le(version);
    b.freeze()
}

/// Encodes a delete argument.
pub fn encode_delete(id: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_u64_le(id);
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_hw::silicon::Silicon;
    use clio_mn::slowpath::SlowPath;
    use clio_mn::CBoardConfig;
    use clio_proto::Pid;
    use clio_sim::SimTime;

    struct Harness {
        silicon: Silicon,
        slow: SlowPath,
        mv: ClioMv,
        now: SimTime,
    }

    impl Harness {
        fn new() -> Self {
            let cfg = CBoardConfig::test_small();
            let mut silicon = Silicon::new(cfg.hw.clone());
            let mut slow = SlowPath::new(&cfg);
            slow.create_as(Pid(9001));
            let demand = silicon.vm().async_buffer().refill_demand();
            let (pages, _) = slow.refill_pages(demand);
            for p in pages {
                silicon.vm_mut().async_buffer_mut().push(p);
            }
            Harness { silicon, slow, mv: ClioMv::new(64, 16), now: SimTime::ZERO }
        }

        fn call(&mut self, opcode: MvOpcode, arg: Bytes) -> OffloadReply {
            let mut env = OffloadEnv::new(&mut self.silicon, &mut self.slow, Pid(9001), self.now);
            let r = self.mv.on_call(&mut env, opcode as u16, arg);
            self.now = env.now();
            let demand = self.silicon.vm().async_buffer().refill_demand();
            let (pages, _) = self.slow.refill_pages(demand);
            for p in pages {
                self.silicon.vm_mut().async_buffer_mut().push(p);
            }
            r
        }

        fn create(&mut self) -> u64 {
            let r = self.call(MvOpcode::Create, Bytes::new());
            assert_eq!(r.status, Status::Ok);
            u64::from_le_bytes(r.data[..8].try_into().unwrap())
        }
    }

    #[test]
    fn create_append_read_versions() {
        let mut h = Harness::new();
        let id = h.create();
        let v1 = h.call(MvOpcode::Append, encode_append(id, b"version-one!"));
        assert_eq!(v1.status, Status::Ok);
        let v2 = h.call(MvOpcode::Append, encode_append(id, b"version-two!"));
        assert_eq!(u64::from_le_bytes(v2.data[..8].try_into().unwrap()), 2);

        let r1 = h.call(MvOpcode::Read, encode_read(id, 1));
        assert_eq!(&r1.data[..12], b"version-one!");
        let r2 = h.call(MvOpcode::Read, encode_read(id, 2));
        assert_eq!(&r2.data[..12], b"version-two!");
        let latest = h.call(MvOpcode::Read, encode_read(id, u64::MAX));
        assert_eq!(&latest.data[..12], b"version-two!");
    }

    #[test]
    fn invalid_reads_fail() {
        let mut h = Harness::new();
        let id = h.create();
        assert_eq!(h.call(MvOpcode::Read, encode_read(id, 1)).status, Status::InvalidAddr);
        h.call(MvOpcode::Append, encode_append(id, b"x"));
        assert_eq!(h.call(MvOpcode::Read, encode_read(id, 2)).status, Status::InvalidAddr);
        assert_eq!(h.call(MvOpcode::Read, encode_read(999, 1)).status, Status::InvalidAddr);
    }

    #[test]
    fn delete_recycles_ids() {
        let mut h = Harness::new();
        let a = h.create();
        assert_eq!(h.call(MvOpcode::Delete, encode_delete(a)).status, Status::Ok);
        assert_eq!(h.call(MvOpcode::Read, encode_read(a, 1)).status, Status::InvalidAddr);
        let b = h.create();
        assert_eq!(b, a, "freed id is reused");
    }

    #[test]
    fn objects_are_independent() {
        let mut h = Harness::new();
        let a = h.create();
        let b = h.create();
        h.call(MvOpcode::Append, encode_append(a, b"aaaa"));
        h.call(MvOpcode::Append, encode_append(b, b"bbbb"));
        let ra = h.call(MvOpcode::Read, encode_read(a, u64::MAX));
        let rb = h.call(MvOpcode::Read, encode_read(b, u64::MAX));
        assert_eq!(&ra.data[..4], b"aaaa");
        assert_eq!(&rb.data[..4], b"bbbb");
    }

    #[test]
    fn reading_any_version_costs_the_same() {
        let mut h = Harness::new();
        let id = h.create();
        for i in 0..10u8 {
            h.call(MvOpcode::Append, encode_append(id, &[i; 16]));
        }
        let t0 = h.now;
        h.call(MvOpcode::Read, encode_read(id, 1));
        let d_old = h.now.since(t0);
        let t1 = h.now;
        h.call(MvOpcode::Read, encode_read(id, 10));
        let d_new = h.now.since(t1);
        let diff = d_old.as_nanos().abs_diff(d_new.as_nanos());
        assert!(diff < 200, "array-based versions: {d_old} vs {d_new}");
    }
}
