//! The radix-tree index with pointer-chasing offload (paper §6).
//!
//! The tree's nodes live in ordinary Clio remote memory (one big `ralloc`ed
//! region), with the nodes of each level linked into lists. A search walks
//! one level at a time; instead of one network round trip **per node**, the
//! CN calls the [`PointerChase`] extend-path offload once **per level**: the
//! offload follows `next` pointers at DRAM speed, compares each node's key,
//! and returns the matching node's value (the child-level list head) or
//! null — the exact functionality the paper implements in 150 lines of
//! SpinalHDL.
//!
//! Node layout (24 B): `[key u64][value u64][next u64]`.

use bytes::{BufMut, Bytes, BytesMut};
use clio_mn::{Offload, OffloadEnv, OffloadReply};
use clio_proto::Status;
use clio_sim::Cycles;

/// Size of one tree node on the wire.
pub const NODE_BYTES: u64 = 24;

/// Serializes a node.
pub fn encode_node(key: u64, value: u64, next: u64) -> [u8; 24] {
    let mut out = [0u8; 24];
    out[0..8].copy_from_slice(&key.to_le_bytes());
    out[8..16].copy_from_slice(&value.to_le_bytes());
    out[16..24].copy_from_slice(&next.to_le_bytes());
    out
}

/// The pointer-chasing offload: walk a linked list, compare keys, return
/// the value of the first match (or 0).
#[derive(Debug, Default)]
pub struct PointerChase {
    chases: u64,
    nodes_walked: u64,
}

impl PointerChase {
    /// A fresh chaser.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(calls, total nodes visited)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.chases, self.nodes_walked)
    }
}

/// Encodes a chase argument: list head + target key.
pub fn encode_chase(head_va: u64, key: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_u64_le(head_va);
    b.put_u64_le(key);
    b.freeze()
}

/// Decodes a chase reply: the matched node's value, or `None` on null.
pub fn decode_chase(status: Status, data: &[u8]) -> Option<u64> {
    if status != Status::Ok || data.len() < 8 {
        return None;
    }
    let v = u64::from_le_bytes(data[..8].try_into().expect("8 B"));
    (v != 0).then_some(v)
}

impl Offload for PointerChase {
    fn name(&self) -> &str {
        "pointer-chase"
    }

    fn on_call(&mut self, env: &mut OffloadEnv<'_>, _opcode: u16, arg: Bytes) -> OffloadReply {
        if arg.len() < 16 {
            return OffloadReply::err(Status::Unsupported);
        }
        self.chases += 1;
        let mut node = u64::from_le_bytes(arg[0..8].try_into().expect("8 B"));
        let key = u64::from_le_bytes(arg[8..16].try_into().expect("8 B"));
        let mut hops = 0u64;
        while node != 0 {
            self.nodes_walked += 1;
            hops += 1;
            if hops > 1_000_000 {
                return OffloadReply::err(Status::Unsupported); // cycle guard
            }
            let raw = match env.read(node, NODE_BYTES as u32) {
                Ok(r) => r,
                Err(s) => return OffloadReply::err(s),
            };
            env.compute(Cycles(2)); // key comparison
            let nkey = u64::from_le_bytes(raw[0..8].try_into().expect("8 B"));
            if nkey == key {
                let value = &raw[8..16];
                return OffloadReply::ok(Bytes::copy_from_slice(value));
            }
            node = u64::from_le_bytes(raw[16..24].try_into().expect("8 B"));
        }
        OffloadReply::ok(Bytes::copy_from_slice(&0u64.to_le_bytes()))
    }
}

/// CN-side radix-tree builder: computes the node placement for a tree of
/// `entries` keys with the given `fanout`, as writes into a contiguous
/// remote region starting at `base_va`.
///
/// Returns `(writes, levels)`: the writes to issue (`(va, bytes)`), and the
/// per-level list-head addresses. Keys are `0..entries`; a search for key
/// `k` chases level 0 for digit 0 of `k`, then the returned child list, and
/// so on. The value stored at the leaf level is `k + 1` (non-zero).
#[allow(clippy::type_complexity)]
pub fn build_tree(base_va: u64, entries: u64, fanout: u64) -> (Vec<(u64, Vec<u8>)>, Vec<u64>, u32) {
    assert!(fanout >= 2, "radix fanout must be at least 2");
    let mut levels = 1u32;
    while fanout.pow(levels) < entries {
        levels += 1;
    }
    let mut writes = Vec::new();
    let mut cursor = base_va;
    let mut alloc_node = |key: u64, value: u64, next: u64| -> u64 {
        let va = cursor;
        cursor += NODE_BYTES;
        writes.push((va, encode_node(key, value, next).to_vec()));
        va
    };

    // Build bottom-up: each level's lists are children of the level above.
    // Level `levels-1` (leaves): for each prefix, a list of up to `fanout`
    // leaf nodes. We materialize only the lists reachable for keys
    // 0..entries.
    fn digits(mut k: u64, fanout: u64, levels: u32) -> Vec<u64> {
        let mut d = vec![0u64; levels as usize];
        for i in (0..levels as usize).rev() {
            d[i] = k % fanout;
            k /= fanout;
        }
        d
    }

    // Recursive helper materializing the list for a given prefix at `depth`.
    // Returns the list head VA.
    #[allow(clippy::too_many_arguments)]
    fn build_list(
        prefix: u64,
        depth: u32,
        levels: u32,
        fanout: u64,
        entries: u64,
        alloc: &mut dyn FnMut(u64, u64, u64) -> u64,
    ) -> u64 {
        // Which digit values exist at this depth under `prefix`?
        let mut head = 0u64;
        for digit in (0..fanout).rev() {
            let child_prefix = prefix * fanout + digit;
            // Lowest key with this prefix at this depth:
            let span = fanout.pow(levels - depth - 1);
            let lo = child_prefix * span;
            if lo >= entries {
                continue;
            }
            let value = if depth + 1 == levels {
                lo + 1 // leaf: the key's value (key + 1, non-zero)
            } else {
                build_list(child_prefix, depth + 1, levels, fanout, entries, alloc)
            };
            head = alloc(digit, value, head);
        }
        head
    }

    let root = build_list(0, 0, levels, fanout, entries, &mut alloc_node);
    let _ = digits; // used by tests
    (writes, vec![root], levels)
}

/// Computes the per-level digits to chase for key `k` (most significant
/// first).
pub fn search_digits(k: u64, fanout: u64, levels: u32) -> Vec<u64> {
    let mut d = vec![0u64; levels as usize];
    let mut k = k;
    for i in (0..levels as usize).rev() {
        d[i] = k % fanout;
        k /= fanout;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_hw::silicon::Silicon;
    use clio_mn::slowpath::SlowPath;
    use clio_mn::CBoardConfig;
    use clio_proto::{Perm, Pid};
    use clio_sim::SimTime;

    struct Harness {
        silicon: Silicon,
        slow: SlowPath,
        chase: PointerChase,
        now: SimTime,
        pid: Pid,
    }

    impl Harness {
        fn new() -> Self {
            let cfg = CBoardConfig::test_small();
            let mut silicon = Silicon::new(cfg.hw.clone());
            let mut slow = SlowPath::new(&cfg);
            slow.create_as(Pid(9002));
            let demand = silicon.vm().async_buffer().refill_demand();
            let (pages, _) = slow.refill_pages(demand);
            for p in pages {
                silicon.vm_mut().async_buffer_mut().push(p);
            }
            Harness {
                silicon,
                slow,
                chase: PointerChase::new(),
                now: SimTime::ZERO,
                pid: Pid(9002),
            }
        }

        /// Builds the tree inside the offload's own space (tests don't need
        /// the network path).
        fn build(&mut self, entries: u64, fanout: u64) -> (u64, u32) {
            let mut env = OffloadEnv::new(&mut self.silicon, &mut self.slow, self.pid, self.now);
            let total = entries * fanout * NODE_BYTES * 4; // generous
            let base = env.alloc(total, Perm::RW).expect("alloc");
            let (writes, heads, levels) = build_tree(base, entries, fanout);
            for (va, bytes) in writes {
                env.write(va, &bytes).expect("write node");
            }
            self.now = env.now();
            self.refill();
            (heads[0], levels)
        }

        fn refill(&mut self) {
            let demand = self.silicon.vm().async_buffer().refill_demand();
            let (pages, _) = self.slow.refill_pages(demand);
            for p in pages {
                self.silicon.vm_mut().async_buffer_mut().push(p);
            }
        }

        fn search(&mut self, root: u64, key: u64, fanout: u64, levels: u32) -> Option<u64> {
            let digits = search_digits(key, fanout, levels);
            let mut head = root;
            for d in digits {
                let mut env =
                    OffloadEnv::new(&mut self.silicon, &mut self.slow, self.pid, self.now);
                let reply = self.chase.on_call(&mut env, 0, encode_chase(head, d));
                self.now = env.now();
                self.refill();
                head = decode_chase(reply.status, &reply.data)?;
            }
            Some(head - 1) // leaf stores key + 1
        }
    }

    #[test]
    fn search_finds_every_key() {
        let mut h = Harness::new();
        let (root, levels) = h.build(64, 4);
        for k in 0..64u64 {
            assert_eq!(h.search(root, k, 4, levels), Some(k), "key {k}");
        }
    }

    #[test]
    fn missing_keys_return_none() {
        let mut h = Harness::new();
        let (root, levels) = h.build(10, 4);
        // Keys 10..16 share the tree shape but have no leaves.
        assert_eq!(h.search(root, 13, 4, levels), None);
    }

    #[test]
    fn chase_walks_multiple_nodes_per_level() {
        let mut h = Harness::new();
        let (root, levels) = h.build(256, 16);
        h.search(root, 255, 16, levels).expect("found");
        let (calls, walked) = h.chase.stats();
        assert_eq!(calls, levels as u64);
        assert!(walked > calls, "lists longer than one node were walked");
    }

    #[test]
    fn digits_roundtrip() {
        // key 27 in fanout 4, 3 levels: 27 = 1*16 + 2*4 + 3.
        assert_eq!(search_digits(27, 4, 3), vec![1, 2, 3]);
        assert_eq!(search_digits(0, 4, 3), vec![0, 0, 0]);
    }

    #[test]
    fn node_encoding() {
        let n = encode_node(1, 2, 3);
        assert_eq!(u64::from_le_bytes(n[0..8].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(n[8..16].try_into().unwrap()), 2);
        assert_eq!(u64::from_le_bytes(n[16..24].try_into().unwrap()), 3);
        assert_eq!(decode_chase(Status::Ok, &2u64.to_le_bytes()), Some(2));
        assert_eq!(decode_chase(Status::Ok, &0u64.to_le_bytes()), None);
    }
}
