//! The image compression utility (paper §6).
//!
//! A FaaS-style service running **purely at CNs**: each client (think one
//! user's photo collection) runs as its own process for isolation, keeps two
//! arrays at the MN (originals and compressed), and loops
//! `rread → compress → rwrite`. The codec is a real run-length encoder over
//! synthetic photos with spatially-correlated pixels — the paper uses
//! compression as a stand-in for CN-side processing that is too complex to
//! offload.

use clio_sim::SimRng;

/// Width/height of the paper's test images (256×256 single-channel).
pub const IMAGE_DIM: usize = 256;
/// Bytes per image.
pub const IMAGE_BYTES: usize = IMAGE_DIM * IMAGE_DIM;

/// Generates a synthetic photo: smooth regions with occasional edges, so
/// RLE achieves realistic (~3-6×) compression.
pub fn synth_image(rng: &mut SimRng) -> Vec<u8> {
    let mut img = Vec::with_capacity(IMAGE_BYTES);
    let mut level: u8 = (rng.u64() % 256) as u8;
    let mut run_left = 0usize;
    for _ in 0..IMAGE_BYTES {
        if run_left == 0 {
            run_left = 8 + (rng.u64() % 120) as usize;
            level = (rng.u64() % 256) as u8;
        }
        // Occasional speckle noise within a region.
        if rng.chance(0.04) {
            img.push(level.saturating_add(1 + (rng.u64() % 3) as u8));
        } else {
            img.push(level);
        }
        run_left -= 1;
    }
    img
}

/// Run-length encodes `data` as `(count, value)` pairs (count ≤ 255).
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = data.iter().copied();
    let Some(mut current) = iter.next() else { return out };
    let mut count: u8 = 1;
    for b in iter {
        if b == current && count < u8::MAX {
            count += 1;
        } else {
            out.push(count);
            out.push(current);
            current = b;
            count = 1;
        }
    }
    out.push(count);
    out.push(current);
    out
}

/// Decodes an RLE stream.
pub fn rle_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for pair in data.chunks_exact(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    out
}

/// Estimated CPU time to compress + decompress one image at a CN (drives
/// the virtual clock in the application model). A FaaS-grade core processes
/// photos at roughly 4 MB/s end to end (paper §6 uses compression as a
/// stand-in for heavier image processing), i.e. ~16 ms per 256x256 photo.
pub fn compress_cpu_time(bytes: usize) -> clio_sim::SimDuration {
    clio_sim::SimDuration::from_nanos(bytes as u64 * 250)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_lossless() {
        let mut rng = SimRng::new(5);
        for _ in 0..5 {
            let img = synth_image(&mut rng);
            let packed = rle_compress(&img);
            assert_eq!(rle_decompress(&packed), img);
        }
    }

    #[test]
    fn synthetic_images_compress_meaningfully() {
        let mut rng = SimRng::new(6);
        let img = synth_image(&mut rng);
        let packed = rle_compress(&img);
        let ratio = img.len() as f64 / packed.len() as f64;
        assert!(ratio > 2.0, "compression ratio {ratio:.2} too low");
        assert!(ratio < 100.0, "suspiciously compressible");
    }

    #[test]
    fn edge_cases() {
        assert!(rle_compress(&[]).is_empty());
        assert_eq!(rle_decompress(&rle_compress(&[7])), vec![7]);
        let long = vec![9u8; 1000]; // run longer than a u8 count
        assert_eq!(rle_decompress(&rle_compress(&long)), long);
        let alternating: Vec<u8> = (0..500).map(|i| (i % 2) as u8).collect();
        assert_eq!(rle_decompress(&rle_compress(&alternating)), alternating);
    }

    #[test]
    fn cpu_time_scales_linearly() {
        assert_eq!(compress_cpu_time(IMAGE_BYTES).as_nanos(), IMAGE_BYTES as u64 * 250);
        assert_eq!(
            compress_cpu_time(2 * IMAGE_BYTES).as_nanos(),
            2 * compress_cpu_time(IMAGE_BYTES).as_nanos()
        );
    }
}
