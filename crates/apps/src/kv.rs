//! Clio-KV: the key-value store offload (paper §6).
//!
//! Runs **at the memory node** on the extend path, in its own remote address
//! space, exactly as the paper describes: a chained hash table whose buckets
//! hold slots of seven `(fingerprint, value-address)` entries; key-value
//! records live at separate addresses in the same space. Every metadata and
//! data access goes through the offload's virtual-memory interface (so it is
//! translated, permission-checked and timed by the fast-path model).
//!
//! A thin CN-side codec ([`KvRequest`]/[`KvResponse`]) frames operations
//! into offload calls, and [`partition_of`] implements the CN-side load
//! balancer that shards keys across MNs (§6: "another CN-side load balancer
//! is used to partition key-value pairs into different MNs").

use bytes::{BufMut, Bytes, BytesMut};
use clio_mn::{Offload, OffloadEnv, OffloadReply};
use clio_proto::{Perm, Status};
use clio_sim::Cycles;

/// Entries per hash slot (paper: "Each slot contains the virtual addresses
/// of seven key-value pairs").
const SLOT_ENTRIES: usize = 7;
/// Slot layout: next_va (8) + count (8) + entries (fp 8 + va 8 each).
const SLOT_BYTES: u64 = 16 + (SLOT_ENTRIES as u64) * 16;

/// Operation codes of the offload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOpcode {
    /// Insert or update.
    Put = 0,
    /// Look up.
    Get = 1,
    /// Remove.
    Delete = 2,
}

/// A CN-side request to Clio-KV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRequest {
    /// Insert or update `key`.
    Put {
        /// The key bytes.
        key: Vec<u8>,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Fetch `key`'s value.
    Get {
        /// The key bytes.
        key: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// The key bytes.
        key: Vec<u8>,
    },
}

impl KvRequest {
    /// The offload opcode for this request.
    pub fn opcode(&self) -> u16 {
        match self {
            KvRequest::Put { .. } => KvOpcode::Put as u16,
            KvRequest::Get { .. } => KvOpcode::Get as u16,
            KvRequest::Delete { .. } => KvOpcode::Delete as u16,
        }
    }

    /// Encodes the argument bytes for the offload call.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            KvRequest::Put { key, value } => {
                b.put_u16_le(key.len() as u16);
                b.put_slice(key);
                b.put_slice(value);
            }
            KvRequest::Get { key } | KvRequest::Delete { key } => {
                b.put_u16_le(key.len() as u16);
                b.put_slice(key);
            }
        }
        b.freeze()
    }
}

/// A decoded Clio-KV reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// Operation succeeded with no payload (put/delete).
    Ok,
    /// Get found the key.
    Value(Bytes),
    /// Key absent.
    NotFound,
}

impl KvResponse {
    /// Decodes an offload reply.
    pub fn decode(status: Status, data: Bytes) -> Self {
        match status {
            Status::Ok if data.is_empty() => KvResponse::Ok,
            Status::Ok => KvResponse::Value(data),
            _ => KvResponse::NotFound,
        }
    }
}

/// CN-side partitioner: which MN serves `key` (§6's load balancer).
pub fn partition_of(key: &[u8], mns: usize) -> usize {
    assert!(mns > 0, "no partitions");
    (hash_key(key) % mns as u64) as usize
}

fn hash_key(key: &[u8]) -> u64 {
    // FNV-1a, finished with a splitmix avalanche.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Fingerprint stored beside each value address (1 byte in one u64 lane).
fn fingerprint(key: &[u8]) -> u64 {
    (hash_key(key) >> 56) | 1 // never zero, so 0 marks an empty entry lane
}

/// The Clio-KV offload module.
///
/// Memory layout (all in the offload's own RAS):
///
/// ```text
/// buckets:  [bucket_0 .. bucket_N-1]      each 8 B = VA of first slot (0 = empty)
/// slot:     [next_va u64][count u64][ (fp u64, va u64) x 7 ]
/// record:   [key_len u32][val_len u32][key bytes][value bytes]
/// ```
///
/// Records and slots are bump-allocated from arena chunks `ralloc`ed on
/// demand — mirroring how the paper's implementation calls `ralloc` for new
/// slots and data.
#[derive(Debug)]
pub struct ClioKv {
    buckets: u64,
    table_va: u64,
    arena_va: u64,
    arena_used: u64,
    arena_cap: u64,
    arena_chunk: u64,
    puts: u64,
    gets: u64,
    deletes: u64,
}

impl ClioKv {
    /// A store with `buckets` hash buckets (lazily initialized on first
    /// call).
    pub fn new(buckets: u64) -> Self {
        ClioKv {
            buckets,
            table_va: 0,
            arena_va: 0,
            arena_used: 0,
            arena_cap: 0,
            arena_chunk: 1 << 20,
            puts: 0,
            gets: 0,
            deletes: 0,
        }
    }

    /// `(puts, gets, deletes)` served.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.puts, self.gets, self.deletes)
    }

    fn ensure_init(&mut self, env: &mut OffloadEnv<'_>) -> Result<(), Status> {
        if self.table_va == 0 {
            self.table_va = env.alloc(self.buckets * 8, Perm::RW)?;
        }
        Ok(())
    }

    fn arena_alloc(&mut self, env: &mut OffloadEnv<'_>, bytes: u64) -> Result<u64, Status> {
        let bytes = bytes.next_multiple_of(8);
        if self.arena_va == 0 || self.arena_used + bytes > self.arena_cap {
            let chunk = self.arena_chunk.max(bytes);
            self.arena_va = env.alloc(chunk, Perm::RW)?;
            self.arena_cap = chunk;
            self.arena_used = 0;
        }
        let va = self.arena_va + self.arena_used;
        self.arena_used += bytes;
        Ok(va)
    }

    fn bucket_va(&self, key: &[u8]) -> u64 {
        self.table_va + (hash_key(key) % self.buckets) * 8
    }

    fn write_record(
        &mut self,
        env: &mut OffloadEnv<'_>,
        key: &[u8],
        value: &[u8],
    ) -> Result<u64, Status> {
        let va = self.arena_alloc(env, 8 + key.len() as u64 + value.len() as u64)?;
        let mut rec = BytesMut::with_capacity(8 + key.len() + value.len());
        rec.put_u32_le(key.len() as u32);
        rec.put_u32_le(value.len() as u32);
        rec.put_slice(key);
        rec.put_slice(value);
        env.write(va, &rec)?;
        Ok(va)
    }

    fn read_record(&self, env: &mut OffloadEnv<'_>, va: u64) -> Result<(Vec<u8>, Bytes), Status> {
        let hdr = env.read(va, 8)?;
        let key_len = u32::from_le_bytes(hdr[0..4].try_into().expect("4 B"));
        let val_len = u32::from_le_bytes(hdr[4..8].try_into().expect("4 B"));
        let body = env.read(va + 8, key_len + val_len)?;
        let key = body[..key_len as usize].to_vec();
        let value = body.slice(key_len as usize..);
        Ok((key, value))
    }

    /// Walks the slot chain of `key`'s bucket. Returns
    /// `(slot_va, entry_idx)` of the matching entry, plus the last slot of
    /// the chain (for appends).
    #[allow(clippy::type_complexity)]
    fn find(
        &mut self,
        env: &mut OffloadEnv<'_>,
        key: &[u8],
    ) -> Result<(Option<(u64, usize)>, Option<u64>), Status> {
        let fp = fingerprint(key);
        let mut slot_va = env.read_u64(self.bucket_va(key))?;
        let mut last = None;
        while slot_va != 0 {
            last = Some(slot_va);
            let slot = env.read(slot_va, SLOT_BYTES as u32)?;
            let count = u64::from_le_bytes(slot[8..16].try_into().expect("8 B")) as usize;
            for i in 0..count.min(SLOT_ENTRIES) {
                let off = 16 + i * 16;
                let efp = u64::from_le_bytes(slot[off..off + 8].try_into().expect("8 B"));
                if efp != fp {
                    continue;
                }
                env.compute(Cycles(4)); // fingerprint comparison
                let eva = u64::from_le_bytes(slot[off + 8..off + 16].try_into().expect("8 B"));
                let (rkey, _) = self.read_record(env, eva)?;
                if rkey == key {
                    return Ok((Some((slot_va, i)), last));
                }
            }
            slot_va = u64::from_le_bytes(slot[0..8].try_into().expect("8 B"));
        }
        Ok((None, last))
    }

    fn put(&mut self, env: &mut OffloadEnv<'_>, key: &[u8], value: &[u8]) -> OffloadReply {
        self.puts += 1;
        let result = (|| -> Result<(), Status> {
            let record_va = self.write_record(env, key, value)?;
            let fp = fingerprint(key);
            match self.find(env, key)? {
                (Some((slot_va, idx)), _) => {
                    // Update in place: point the entry at the new record.
                    env.write_u64(slot_va + 16 + idx as u64 * 16 + 8, record_va)?;
                }
                (None, Some(s)) => {
                    // Append to the last slot, or chain a fresh one.
                    let count = env.read_u64(s + 8)?;
                    if (count as usize) < SLOT_ENTRIES {
                        let off = 16 + count * 16;
                        env.write_u64(s + off, fp)?;
                        env.write_u64(s + off + 8, record_va)?;
                        env.write_u64(s + 8, count + 1)?;
                    } else {
                        let fresh = self.new_slot(env, fp, record_va)?;
                        env.write_u64(s, fresh)?; // link
                    }
                }
                (None, None) => {
                    let fresh = self.new_slot(env, fp, record_va)?;
                    env.write_u64(self.bucket_va(key), fresh)?;
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => OffloadReply::ok(Bytes::new()),
            Err(s) => OffloadReply::err(s),
        }
    }

    fn new_slot(&mut self, env: &mut OffloadEnv<'_>, fp: u64, va: u64) -> Result<u64, Status> {
        let slot_va = self.arena_alloc(env, SLOT_BYTES)?;
        let mut slot = BytesMut::zeroed(SLOT_BYTES as usize);
        slot[8..16].copy_from_slice(&1u64.to_le_bytes());
        slot[16..24].copy_from_slice(&fp.to_le_bytes());
        slot[24..32].copy_from_slice(&va.to_le_bytes());
        env.write(slot_va, &slot)?;
        Ok(slot_va)
    }

    fn get(&mut self, env: &mut OffloadEnv<'_>, key: &[u8]) -> OffloadReply {
        self.gets += 1;
        match self.find(env, key) {
            Ok((Some((slot_va, idx)), _)) => {
                let eva = match env.read_u64(slot_va + 16 + idx as u64 * 16 + 8) {
                    Ok(v) => v,
                    Err(s) => return OffloadReply::err(s),
                };
                match self.read_record(env, eva) {
                    Ok((_, value)) => OffloadReply::ok(value),
                    Err(s) => OffloadReply::err(s),
                }
            }
            Ok((None, _)) => OffloadReply::err(Status::InvalidAddr),
            Err(s) => OffloadReply::err(s),
        }
    }

    fn delete(&mut self, env: &mut OffloadEnv<'_>, key: &[u8]) -> OffloadReply {
        self.deletes += 1;
        match self.find(env, key) {
            Ok((Some((slot_va, idx)), _)) => {
                let res = (|| -> Result<(), Status> {
                    // Swap the last entry of this slot into the hole.
                    let count = env.read_u64(slot_va + 8)?;
                    let last = count.saturating_sub(1);
                    if last as usize != idx {
                        let src = slot_va + 16 + last * 16;
                        let fp = env.read_u64(src)?;
                        let va = env.read_u64(src + 8)?;
                        let dst = slot_va + 16 + idx as u64 * 16;
                        env.write_u64(dst, fp)?;
                        env.write_u64(dst + 8, va)?;
                    }
                    env.write_u64(slot_va + 8, last)?;
                    Ok(())
                })();
                match res {
                    Ok(()) => OffloadReply::ok(Bytes::new()),
                    Err(s) => OffloadReply::err(s),
                }
            }
            Ok((None, _)) => OffloadReply::err(Status::InvalidAddr),
            Err(s) => OffloadReply::err(s),
        }
    }
}

impl Offload for ClioKv {
    fn name(&self) -> &str {
        "clio-kv"
    }

    fn on_call(&mut self, env: &mut OffloadEnv<'_>, opcode: u16, arg: Bytes) -> OffloadReply {
        if self.ensure_init(env).is_err() {
            return OffloadReply::err(Status::OutOfVirtualMemory);
        }
        if arg.len() < 2 {
            return OffloadReply::err(Status::Unsupported);
        }
        let key_len = u16::from_le_bytes(arg[0..2].try_into().expect("2 B")) as usize;
        if arg.len() < 2 + key_len {
            return OffloadReply::err(Status::Unsupported);
        }
        let key = arg[2..2 + key_len].to_vec();
        // Hash computation on the FPGA.
        env.compute(Cycles(16));
        match opcode {
            x if x == KvOpcode::Put as u16 => {
                let value = arg[2 + key_len..].to_vec();
                self.put(env, &key, &value)
            }
            x if x == KvOpcode::Get as u16 => self.get(env, &key),
            x if x == KvOpcode::Delete as u16 => self.delete(env, &key),
            _ => OffloadReply::err(Status::Unsupported),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_hw::silicon::Silicon;
    use clio_mn::slowpath::SlowPath;
    use clio_mn::CBoardConfig;
    use clio_proto::Pid;
    use clio_sim::SimTime;

    struct Harness {
        silicon: Silicon,
        slow: SlowPath,
        kv: ClioKv,
        now: SimTime,
    }

    impl Harness {
        fn new() -> Self {
            let cfg = CBoardConfig::test_small();
            let mut silicon = Silicon::new(cfg.hw.clone());
            let mut slow = SlowPath::new(&cfg);
            slow.create_as(Pid(9000));
            let demand = silicon.vm().async_buffer().refill_demand();
            let (pages, _) = slow.refill_pages(demand);
            for p in pages {
                silicon.vm_mut().async_buffer_mut().push(p);
            }
            Harness { silicon, slow, kv: ClioKv::new(256), now: SimTime::ZERO }
        }

        fn call(&mut self, req: &KvRequest) -> KvResponse {
            let mut env = OffloadEnv::new(&mut self.silicon, &mut self.slow, Pid(9000), self.now);
            let reply = self.kv.on_call(&mut env, req.opcode(), req.encode());
            // Keep the fault buffer happy and advance time.
            self.now = env.now();
            let demand = self.silicon.vm().async_buffer().refill_demand();
            let (pages, _) = self.slow.refill_pages(demand);
            for p in pages {
                self.silicon.vm_mut().async_buffer_mut().push(p);
            }
            KvResponse::decode(reply.status, reply.data)
        }

        fn put(&mut self, k: &[u8], v: &[u8]) -> KvResponse {
            self.call(&KvRequest::Put { key: k.to_vec(), value: v.to_vec() })
        }
        fn get(&mut self, k: &[u8]) -> KvResponse {
            self.call(&KvRequest::Get { key: k.to_vec() })
        }
        fn del(&mut self, k: &[u8]) -> KvResponse {
            self.call(&KvRequest::Delete { key: k.to_vec() })
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let mut h = Harness::new();
        assert_eq!(h.put(b"alpha", b"1111"), KvResponse::Ok);
        assert_eq!(h.get(b"alpha"), KvResponse::Value(Bytes::from_static(b"1111")));
        assert_eq!(h.get(b"beta"), KvResponse::NotFound);
    }

    #[test]
    fn update_replaces_value() {
        let mut h = Harness::new();
        h.put(b"k", b"old");
        h.put(b"k", b"newer-value");
        assert_eq!(h.get(b"k"), KvResponse::Value(Bytes::from_static(b"newer-value")));
    }

    #[test]
    fn delete_removes() {
        let mut h = Harness::new();
        h.put(b"k1", b"v1");
        h.put(b"k2", b"v2");
        assert_eq!(h.del(b"k1"), KvResponse::Ok);
        assert_eq!(h.get(b"k1"), KvResponse::NotFound);
        assert_eq!(h.get(b"k2"), KvResponse::Value(Bytes::from_static(b"v2")));
        assert_eq!(h.del(b"k1"), KvResponse::NotFound);
    }

    #[test]
    fn many_keys_chain_through_slots() {
        // Few buckets force slot chaining.
        let mut h = Harness::new();
        h.kv = ClioKv::new(4);
        for i in 0..200u32 {
            let k = format!("key-{i}");
            let v = format!("value-{i}");
            assert_eq!(h.put(k.as_bytes(), v.as_bytes()), KvResponse::Ok, "{k}");
        }
        for i in 0..200u32 {
            let k = format!("key-{i}");
            let v = format!("value-{i}");
            assert_eq!(h.get(k.as_bytes()), KvResponse::Value(Bytes::from(v.into_bytes())), "{k}");
        }
        let (p, g, _) = h.kv.op_counts();
        assert_eq!((p, g), (200, 200));
    }

    #[test]
    fn ops_take_device_time() {
        let mut h = Harness::new();
        h.put(b"k", b"v");
        let before = h.now;
        h.get(b"k");
        let elapsed = h.now.since(before);
        // A get is a few DRAM accesses: hundreds of ns to a few µs.
        assert!(elapsed.as_nanos() > 300 && elapsed.as_nanos() < 20_000, "get took {elapsed}");
    }

    #[test]
    fn partitioner_is_stable_and_balanced() {
        assert_eq!(partition_of(b"abc", 4), partition_of(b"abc", 4));
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            counts[partition_of(format!("key-{i}").as_bytes(), 4)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "unbalanced partitions: {counts:?}");
        }
    }

    #[test]
    fn request_encoding_roundtrips() {
        let r = KvRequest::Put { key: b"k".to_vec(), value: b"v".to_vec() };
        let enc = r.encode();
        assert_eq!(enc.len(), 2 + 1 + 1);
        assert_eq!(KvResponse::decode(Status::Ok, Bytes::new()), KvResponse::Ok);
        assert_eq!(KvResponse::decode(Status::InvalidAddr, Bytes::new()), KvResponse::NotFound);
    }
}
