//! # clio-apps — the five applications the paper builds on Clio (§6)
//!
//! * [`image`] — a FaaS-style image compression utility running purely at
//!   CNs, one process per client for isolation (exercises basic
//!   `rread`/`rwrite` plus MN-side protection),
//! * [`radix`] — a radix-tree index whose per-level search runs as a
//!   **pointer-chasing extend-path offload** (one RTT per level instead of
//!   one per node),
//! * [`kv`] — **Clio-KV**: a key-value store running *at the MN* as an
//!   offload, using a chained hash table with fingerprints in its own
//!   remote address space,
//! * [`mv`] — **Clio-MV**: a multi-version object store offload
//!   (create/append/read-version) with sequentially consistent per-object
//!   access,
//! * [`dataframe`] — **Clio-DF**: select/aggregate offloaded to the MN,
//!   shuffle/histogram at the CN,
//! * [`ycsb`] — the YCSB workload generator used by the KV evaluation
//!   (Zipf θ = 0.99, workloads A/B/C).

pub mod dataframe;
pub mod image;
pub mod kv;
pub mod mv;
pub mod radix;
pub mod ycsb;
