//! Clio-DF: the split CN/MN data-analytics pipeline (paper §6).
//!
//! A DataFrame-style query — `select` rows matching a predicate, `avg` a
//! field over them, then a CN-side `histogram` — where `select` and
//! `aggregate` run as MN offloads (shipping only matching rows over the
//! network) while `shuffle`/`histogram` stay at the CN. Figure 20 sweeps
//! the select ratio: at high selectivity the CPU's faster compute wins; at
//! low selectivity Clio's reduced data movement wins.
//!
//! Row layout (8 B): `[field_a u32][field_b u32]`.

use bytes::{BufMut, Bytes, BytesMut};
use clio_mn::{Offload, OffloadEnv, OffloadReply};
use clio_proto::Status;
use clio_sim::{Cycles, SimRng};

/// Bytes per table row.
pub const ROW_BYTES: u64 = 8;

/// Offload opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfOpcode {
    /// Select rows with `field_a < threshold` from `[in_va, in_va+rows)`
    /// into `out_va`; returns the match count (u64).
    Select = 0,
    /// Average `field_b` over `[va, va+rows)`; returns the mean ×1000 (u64).
    Avg = 1,
}

/// Generates a deterministic table whose `field_a` is uniform in
/// `[0, 100)` — so a threshold of `t` selects ~`t` percent — and whose
/// `field_b` is a "score".
pub fn synth_table(rows: u64, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    let mut out = BytesMut::with_capacity((rows * ROW_BYTES) as usize);
    for _ in 0..rows {
        out.put_u32_le((rng.u64() % 100) as u32);
        out.put_u32_le((rng.u64() % 1000) as u32);
    }
    out.freeze().to_vec()
}

/// Encodes a select argument.
pub fn encode_select(in_va: u64, rows: u64, threshold: u32, out_va: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(28);
    b.put_u64_le(in_va);
    b.put_u64_le(rows);
    b.put_u32_le(threshold);
    b.put_u64_le(out_va);
    b.freeze()
}

/// Encodes an avg argument.
pub fn encode_avg(va: u64, rows: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_u64_le(va);
    b.put_u64_le(rows);
    b.freeze()
}

/// CN-side histogram over selected rows' `field_b` (10 buckets of 100).
pub fn histogram(rows: &[u8]) -> [u64; 10] {
    let mut h = [0u64; 10];
    for row in rows.chunks_exact(ROW_BYTES as usize) {
        let b = u32::from_le_bytes(row[4..8].try_into().expect("4 B"));
        h[(b as usize / 100).min(9)] += 1;
    }
    h
}

/// CN-side reference implementations (the RDMA baseline computes these
/// locally after fetching the whole table).
pub fn select_local(table: &[u8], threshold: u32) -> Vec<u8> {
    let mut out = Vec::new();
    for row in table.chunks_exact(ROW_BYTES as usize) {
        let a = u32::from_le_bytes(row[0..4].try_into().expect("4 B"));
        if a < threshold {
            out.extend_from_slice(row);
        }
    }
    out
}

/// CN-side mean of `field_b` (×1000, truncated), matching the offload.
pub fn avg_local(rows: &[u8]) -> u64 {
    let mut sum = 0u64;
    let mut n = 0u64;
    for row in rows.chunks_exact(ROW_BYTES as usize) {
        sum += u32::from_le_bytes(row[4..8].try_into().expect("4 B")) as u64;
        n += 1;
    }
    (sum * 1000).checked_div(n).unwrap_or(0)
}

/// The select/aggregate offload module. The FPGA scans at one row per
/// cycle-ish (charged via `compute`), reading and writing through the
/// translated fast path in bursts.
#[derive(Debug, Default)]
pub struct ClioDf {
    selects: u64,
    avgs: u64,
}

/// Rows processed per DRAM burst by the offload.
const BURST_ROWS: u64 = 512;

impl ClioDf {
    /// A fresh module.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(selects, avgs)` served.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.selects, self.avgs)
    }

    fn select(
        &mut self,
        env: &mut OffloadEnv<'_>,
        in_va: u64,
        rows: u64,
        threshold: u32,
        out_va: u64,
    ) -> OffloadReply {
        self.selects += 1;
        let mut matched = 0u64;
        let mut out_cursor = out_va;
        let mut row = 0u64;
        while row < rows {
            let burst = BURST_ROWS.min(rows - row);
            let raw = match env.read(in_va + row * ROW_BYTES, (burst * ROW_BYTES) as u32) {
                Ok(r) => r,
                Err(s) => return OffloadReply::err(s),
            };
            // One comparison per row: ~1 cycle each on the 512-bit path.
            env.compute(Cycles(burst / 8 + 1));
            let mut keep = BytesMut::new();
            for r in raw.chunks_exact(ROW_BYTES as usize) {
                let a = u32::from_le_bytes(r[0..4].try_into().expect("4 B"));
                if a < threshold {
                    keep.put_slice(r);
                }
            }
            if !keep.is_empty() {
                if let Err(s) = env.write(out_cursor, &keep) {
                    return OffloadReply::err(s);
                }
                matched += keep.len() as u64 / ROW_BYTES;
                out_cursor += keep.len() as u64;
            }
            row += burst;
        }
        OffloadReply::ok(Bytes::copy_from_slice(&matched.to_le_bytes()))
    }

    fn avg(&mut self, env: &mut OffloadEnv<'_>, va: u64, rows: u64) -> OffloadReply {
        self.avgs += 1;
        let mut sum = 0u64;
        let mut row = 0u64;
        while row < rows {
            let burst = BURST_ROWS.min(rows - row);
            let raw = match env.read(va + row * ROW_BYTES, (burst * ROW_BYTES) as u32) {
                Ok(r) => r,
                Err(s) => return OffloadReply::err(s),
            };
            env.compute(Cycles(burst / 8 + 1));
            for r in raw.chunks_exact(ROW_BYTES as usize) {
                sum += u32::from_le_bytes(r[4..8].try_into().expect("4 B")) as u64;
            }
            row += burst;
        }
        let mean = (sum * 1000).checked_div(rows).unwrap_or(0);
        OffloadReply::ok(Bytes::copy_from_slice(&mean.to_le_bytes()))
    }
}

impl Offload for ClioDf {
    fn name(&self) -> &str {
        "clio-df"
    }

    fn on_call(&mut self, env: &mut OffloadEnv<'_>, opcode: u16, arg: Bytes) -> OffloadReply {
        let u64_at = |off: usize| -> Option<u64> {
            arg.get(off..off + 8).map(|s| u64::from_le_bytes(s.try_into().expect("8 B")))
        };
        match opcode {
            x if x == DfOpcode::Select as u16 => {
                let (Some(in_va), Some(rows), Some(out_va)) = (u64_at(0), u64_at(8), u64_at(20))
                else {
                    return OffloadReply::err(Status::Unsupported);
                };
                let Some(thr) =
                    arg.get(16..20).map(|s| u32::from_le_bytes(s.try_into().expect("4 B")))
                else {
                    return OffloadReply::err(Status::Unsupported);
                };
                self.select(env, in_va, rows, thr, out_va)
            }
            x if x == DfOpcode::Avg as u16 => {
                let (Some(va), Some(rows)) = (u64_at(0), u64_at(8)) else {
                    return OffloadReply::err(Status::Unsupported);
                };
                self.avg(env, va, rows)
            }
            _ => OffloadReply::err(Status::Unsupported),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_hw::silicon::Silicon;
    use clio_mn::slowpath::SlowPath;
    use clio_mn::CBoardConfig;
    use clio_proto::{Perm, Pid};
    use clio_sim::SimTime;

    struct Harness {
        silicon: Silicon,
        slow: SlowPath,
        df: ClioDf,
        now: SimTime,
    }

    impl Harness {
        fn new() -> Self {
            let mut cfg = CBoardConfig::test_small();
            cfg.hw.phys_mem_bytes = 64 << 20;
            let mut silicon = Silicon::new(cfg.hw.clone());
            let mut slow = SlowPath::new(&cfg);
            slow.create_as(Pid(9003));
            let demand = silicon.vm().async_buffer().refill_demand();
            let (pages, _) = slow.refill_pages(demand);
            for p in pages {
                silicon.vm_mut().async_buffer_mut().push(p);
            }
            Harness { silicon, slow, df: ClioDf::new(), now: SimTime::ZERO }
        }

        fn env(&mut self) -> OffloadEnv<'_> {
            OffloadEnv::new(&mut self.silicon, &mut self.slow, Pid(9003), self.now)
        }

        fn refill(&mut self) {
            let demand = self.silicon.vm().async_buffer().refill_demand();
            let (pages, _) = self.slow.refill_pages(demand);
            for p in pages {
                self.silicon.vm_mut().async_buffer_mut().push(p);
            }
        }
    }

    #[test]
    fn select_and_avg_match_local_reference() {
        let mut h = Harness::new();
        let table = synth_table(4000, 11);
        let (in_va, out_va) = {
            let mut env = h.env();
            let in_va = env.alloc(table.len() as u64, Perm::RW).expect("alloc");
            let out_va = env.alloc(table.len() as u64, Perm::RW).expect("alloc");
            env.write(in_va, &table).expect("upload");
            h.now = env.now();
            (in_va, out_va)
        };
        h.refill();

        let threshold = 20; // ~20% selectivity
        let reply = {
            let mut env = OffloadEnv::new(&mut h.silicon, &mut h.slow, Pid(9003), h.now);
            let r = h.df.on_call(
                &mut env,
                DfOpcode::Select as u16,
                encode_select(in_va, 4000, threshold, out_va),
            );
            h.now = env.now();
            r
        };
        h.refill();
        assert_eq!(reply.status, Status::Ok);
        let matched = u64::from_le_bytes(reply.data[..8].try_into().unwrap());
        let expect = select_local(&table, threshold);
        assert_eq!(matched, expect.len() as u64 / ROW_BYTES);

        // Aggregate over the selected rows at the MN.
        let reply = {
            let mut env = OffloadEnv::new(&mut h.silicon, &mut h.slow, Pid(9003), h.now);
            let r = h.df.on_call(&mut env, DfOpcode::Avg as u16, encode_avg(out_va, matched));
            h.now = env.now();
            r
        };
        let mean = u64::from_le_bytes(reply.data[..8].try_into().unwrap());
        assert_eq!(mean, avg_local(&expect));

        // Read the selected rows back and histogram at the "CN".
        let selected = {
            let mut env = OffloadEnv::new(&mut h.silicon, &mut h.slow, Pid(9003), h.now);
            env.read(out_va, (matched * ROW_BYTES) as u32).expect("read back")
        };
        assert_eq!(histogram(&selected), histogram(&expect));
    }

    #[test]
    fn selectivity_tracks_threshold() {
        let table = synth_table(10_000, 3);
        for thr in [2u32, 20, 80] {
            let sel = select_local(&table, thr);
            let frac = sel.len() as f64 / table.len() as f64;
            assert!((frac - thr as f64 / 100.0).abs() < 0.03, "threshold {thr}: got {frac}");
        }
    }

    #[test]
    fn empty_and_full_selections() {
        let table = synth_table(100, 9);
        assert!(select_local(&table, 0).is_empty());
        assert_eq!(select_local(&table, 100).len(), table.len());
        assert_eq!(avg_local(&[]), 0);
    }
}
