//! YCSB workload generation (paper §7.2: 100 K keys, 1 KB values,
//! Zipf θ = 0.99, workloads A/B/C).

use clio_sim::dist::Zipf;
use clio_sim::SimRng;

/// The standard YCSB mixes used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// 50% get / 50% set.
    A,
    /// 95% get / 5% set.
    B,
    /// 100% get.
    C,
}

impl YcsbMix {
    /// Fraction of operations that are sets.
    pub fn set_ratio(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::B => 0.05,
            YcsbMix::C => 0.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            YcsbMix::A => "A",
            YcsbMix::B => "B",
            YcsbMix::C => "C",
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read the value of a key.
    Get {
        /// Key index.
        key: u64,
    },
    /// Write a (deterministically generated) value.
    Set {
        /// Key index.
        key: u64,
        /// Value payload.
        value: Vec<u8>,
    },
}

/// Deterministic YCSB operation stream.
#[derive(Debug)]
pub struct YcsbGenerator {
    mix: YcsbMix,
    zipf: Zipf,
    value_size: usize,
    rng: SimRng,
}

impl YcsbGenerator {
    /// A generator over `keys` keys with `value_size`-byte values.
    pub fn new(mix: YcsbMix, keys: usize, value_size: usize, seed: u64) -> Self {
        YcsbGenerator { mix, zipf: Zipf::new(keys, 0.99), value_size, rng: SimRng::new(seed) }
    }

    /// The paper's configuration: 100 K keys, 1 KB values (§7.2).
    pub fn paper(mix: YcsbMix, seed: u64) -> Self {
        Self::new(mix, 100_000, 1024, seed)
    }

    /// The key universe size.
    pub fn keys(&self) -> usize {
        self.zipf.universe()
    }

    /// Value bytes per record.
    pub fn value_size(&self) -> usize {
        self.value_size
    }

    /// Deterministic value content for a key (verifiable reads).
    pub fn value_for(&self, key: u64, version: u8) -> Vec<u8> {
        let mut v = vec![0u8; self.value_size];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (key as u8) ^ (i as u8) ^ version;
        }
        v
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let key = self.zipf.sample(&mut self.rng) as u64;
        if self.rng.chance(self.mix.set_ratio()) {
            YcsbOp::Set { key, value: self.value_for(key, 1) }
        } else {
            YcsbOp::Get { key }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratios_hold() {
        for (mix, expect) in [(YcsbMix::A, 0.5), (YcsbMix::B, 0.05), (YcsbMix::C, 0.0)] {
            let mut g = YcsbGenerator::new(mix, 1000, 64, 7);
            let mut sets = 0;
            const N: usize = 20_000;
            for _ in 0..N {
                if matches!(g.next_op(), YcsbOp::Set { .. }) {
                    sets += 1;
                }
            }
            let ratio = sets as f64 / N as f64;
            assert!((ratio - expect).abs() < 0.02, "{}: {ratio} vs {expect}", mix.name());
        }
    }

    #[test]
    fn keys_are_zipf_skewed() {
        let mut g = YcsbGenerator::new(YcsbMix::C, 1000, 64, 3);
        let mut hot = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if let YcsbOp::Get { key } = g.next_op() {
                if key < 10 {
                    hot += 1;
                }
            }
        }
        assert!(hot as f64 / N as f64 > 0.3, "top-10 keys should dominate: {hot}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = YcsbGenerator::new(YcsbMix::A, 100, 16, 42);
        let mut b = YcsbGenerator::new(YcsbMix::A, 100, 16, 42);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn values_verifiable() {
        let g = YcsbGenerator::new(YcsbMix::A, 10, 32, 1);
        assert_eq!(g.value_for(3, 1), g.value_for(3, 1));
        assert_ne!(g.value_for(3, 1), g.value_for(4, 1));
        assert_ne!(g.value_for(3, 1), g.value_for(3, 2));
    }
}
