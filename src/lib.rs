//! # clio — a hardware-software co-designed disaggregated memory system
//!
//! Facade crate re-exporting the whole Clio reproduction. See the individual
//! crates for details:
//!
//! * [`sim`] — deterministic discrete-event simulation substrate
//! * [`trace`] — cross-layer op tracing, metrics registry, Perfetto export
//! * [`net`] — Ethernet fabric simulation
//! * [`proto`] — the Clio wire protocol
//! * [`hw`] — CBoard hardware fast path (page table, TLB, pipeline, ...)
//! * [`mn`] — the memory node (slow path, extend path, migration)
//! * [`cn`] — CLib, the compute-node library
//! * [`mc`] — bounded model checker for the transport state machine
//! * [`system`] — cluster assembly, controller, client runtimes
//! * [`baselines`] — RDMA / Clover / HERD / LegoOS comparison models
//! * [`apps`] — the five paper applications + YCSB

pub use clio_apps as apps;
pub use clio_baselines as baselines;
pub use clio_cn as cn;
pub use clio_core as system;
pub use clio_hw as hw;
pub use clio_mc as mc;
pub use clio_mn as mn;
pub use clio_net as net;
pub use clio_proto as proto;
pub use clio_sim as sim;
pub use clio_trace as trace;
