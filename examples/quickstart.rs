//! Quickstart: the paper's Figure 1, almost verbatim.
//!
//! Two threads of one process share remote memory on a simulated Clio
//! cluster: thread 1 takes a remote lock and issues two asynchronous writes;
//! thread 2 reads the data back under the same lock.
//!
//! Run with: `cargo run --release --example quickstart`

use clio_core::runtime::BlockingCluster;
use clio_core::ClusterConfig;

const PAGE_SIZE: u64 = 4 << 10; // the test cluster's page size

fn main() {
    // A cluster with one compute node and one CBoard memory node.
    let mut cluster = BlockingCluster::new(&ClusterConfig::test_small());

    // Channel used to hand the allocated addresses to the second thread
    // (in place of Figure 1's shared globals).
    let (tx, rx) = std::sync::mpsc::channel::<(u64, u64)>();

    // -- Figure 1, thread 1 ------------------------------------------------
    cluster.spawn(0, 42, move |p| {
        // /* Alloc one remote page. Define a remote lock */
        let remote_addr = p.ralloc(PAGE_SIZE).expect("ralloc");
        let lock = p.ralloc(8).expect("ralloc lock");

        // /* Acquire lock to enter critical section.
        //    Do two ASYNC writes then poll completion. */
        // Enter the critical section BEFORE publishing the addresses:
        // thread 2 must not be able to win the lock race and read the page
        // before it is written.
        p.rlock(lock).expect("rlock");
        tx.send((remote_addr, lock)).expect("publish addresses");
        let e0 = p.rwrite_async(remote_addr, b"hello ");
        let e1 = p.rwrite_async(remote_addr + 6, b"remote world!");
        p.runlock(lock).expect("runlock");
        p.rpoll(&[e0, e1]).expect("rpoll");
        println!("[thread 1] wrote 2 fragments under the lock");
    });

    // -- Figure 1, thread 2 ------------------------------------------------
    cluster.spawn(0, 42, move |p| {
        let (remote_addr, lock) = rx.recv().expect("addresses");

        // /* Synchronously read from remote */
        p.rlock(lock).expect("rlock");
        let data = p.rread(remote_addr, 19).expect("rread");
        p.runlock(lock).expect("runlock");

        println!("[thread 2] read back: {:?}", std::str::from_utf8(&data).expect("utf8"));
        assert_eq!(&data[..], b"hello remote world!");
    });

    cluster.run();
    println!(
        "simulation finished at virtual time {} after {} events",
        cluster.cluster.now(),
        cluster.cluster.sim.events_dispatched()
    );
}
