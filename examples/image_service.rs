//! The paper's image-compression utility (§6) in blocking, paper-style
//! code: each client process keeps two arrays at the memory node (originals
//! and compressed), reads a photo, compresses it at the CN with a real RLE
//! codec, and writes the result back. One process per client isolates
//! tenants (requirement R5 — try reading another client's array and watch
//! the MN refuse).
//!
//! Run with: `cargo run --release --example image_service`

use clio_apps::image::{compress_cpu_time, rle_compress, rle_decompress, synth_image, IMAGE_BYTES};
use clio_core::runtime::BlockingCluster;
use clio_core::ClusterConfig;
use clio_sim::SimRng;

const CLIENTS: u64 = 3;
const IMAGES: usize = 4;

fn main() {
    let mut cfg = ClusterConfig::test_small();
    cfg.board.hw.phys_mem_bytes = 64 << 20;
    let mut cluster = BlockingCluster::new(&cfg);
    let (addr_tx, addr_rx) = std::sync::mpsc::channel::<u64>();

    for client in 0..CLIENTS {
        let addr_tx = addr_tx.clone();
        cluster.spawn(0, 100 + client, move |p| {
            let originals = p.ralloc((IMAGES * IMAGE_BYTES) as u64).expect("ralloc originals");
            let compressed = p.ralloc((IMAGES * IMAGE_BYTES) as u64).expect("ralloc compressed");
            if client == 0 {
                addr_tx.send(originals).expect("publish");
            }

            // Upload this client's photo collection.
            let mut rng = SimRng::new(1000 + client);
            let mut photos = Vec::new();
            for i in 0..IMAGES {
                let img = synth_image(&mut rng);
                p.rwrite(originals + (i * IMAGE_BYTES) as u64, &img).expect("upload");
                photos.push(img);
            }

            // The service loop: read -> compress -> write back.
            let mut total_packed = 0usize;
            for (i, photo) in photos.iter().enumerate() {
                let img = p
                    .rread(originals + (i * IMAGE_BYTES) as u64, IMAGE_BYTES as u32)
                    .expect("rread");
                let packed = rle_compress(&img);
                p.compute(compress_cpu_time(IMAGE_BYTES)); // model the CPU work
                assert_eq!(&rle_decompress(&packed), photo, "lossless");
                total_packed += packed.len();
                p.rwrite(compressed + (i * IMAGE_BYTES) as u64, &packed).expect("write back");
            }
            println!(
                "[client {client}] {IMAGES} photos compressed {}x",
                IMAGES * IMAGE_BYTES / total_packed.max(1)
            );
        });
    }

    // A nosy client: tries to read client 0's photos from a different
    // process and must be refused by the MN's permission check.
    cluster.spawn(0, 999, move |p| {
        let foreign = addr_rx.recv().expect("address");
        let result = p.rread(foreign, 64);
        println!("[nosy client] cross-tenant read => {result:?}");
        assert!(result.is_err(), "protection must hold (R5)");
    });

    cluster.run();
    println!("all clients done at {}", cluster.cluster.now());
}
