//! Clio-DF (paper §6): a select → aggregate → histogram pipeline split
//! between the CN and the memory node. `select` and `avg` run as offloads in
//! the *caller's* address space; only matching rows cross the network for
//! the CN-side histogram.
//!
//! Run with: `cargo run --release --example analytics`

use clio_apps::dataframe::{
    avg_local, encode_avg, encode_select, histogram, select_local, synth_table, ClioDf, DfOpcode,
    ROW_BYTES,
};
use clio_core::runtime::BlockingCluster;
use clio_core::ClusterConfig;

const ROWS: u64 = 50_000;
const OFFLOAD_ID: u16 = 4;

fn main() {
    let mut cfg = ClusterConfig::test_small();
    cfg.board.hw.phys_mem_bytes = 64 << 20;
    let mut cluster = BlockingCluster::new(&cfg);
    cluster.cluster.install_offload_shared(0, OFFLOAD_ID, Box::new(ClioDf::new()));

    cluster.spawn(0, 11, |p| {
        let table = synth_table(ROWS, 7);
        let in_va = p.ralloc(ROWS * ROW_BYTES).expect("ralloc in");
        let out_va = p.ralloc(ROWS * ROW_BYTES).expect("ralloc out");
        p.rwrite(in_va, &table).expect("upload table");
        println!("uploaded {ROWS} rows ({} KB)", table.len() / 1024);

        for threshold in [60u32, 10] {
            // select at the MN: only matching rows are materialized.
            let reply = p
                .offload_call(
                    0,
                    OFFLOAD_ID,
                    DfOpcode::Select as u16,
                    &encode_select(in_va, ROWS, threshold, out_va),
                )
                .expect("select");
            let matched = u64::from_le_bytes(reply[..8].try_into().expect("8 B"));

            // avg at the MN.
            let reply = p
                .offload_call(0, OFFLOAD_ID, DfOpcode::Avg as u16, &encode_avg(out_va, matched))
                .expect("avg");
            let mean_x1000 = u64::from_le_bytes(reply[..8].try_into().expect("8 B"));

            // histogram at the CN over just the selected rows.
            let rows = p.rread(out_va, (matched * ROW_BYTES) as u32).expect("fetch selected");
            let hist = histogram(&rows);

            // Verify against a local reference computation.
            let expect = select_local(&table, threshold);
            assert_eq!(matched, (expect.len() as u64) / ROW_BYTES);
            assert_eq!(mean_x1000, avg_local(&expect));
            assert_eq!(hist, histogram(&expect));

            println!(
                "select(a < {threshold}): {matched} rows ({:.0}%), avg(b) = {:.3}, histogram {:?}",
                100.0 * matched as f64 / ROWS as f64,
                mean_x1000 as f64 / 1000.0,
                hist
            );
        }
    });

    cluster.run();
    println!("done at {}", cluster.cluster.now());
}
