//! A key-value store served *by the memory nodes themselves*: Clio-KV runs
//! as an extend-path offload (paper §6), and a CN-side load balancer shards
//! keys across two CBoards.
//!
//! Run with: `cargo run --release --example kv_store`

use clio_apps::kv::{partition_of, ClioKv, KvRequest, KvResponse};
use clio_core::{AppCompletion, ClientApi, ClientDriver, Cluster, ClusterConfig};
use clio_mn::CBoardConfig;
use clio_proto::Pid;

const KEYS: u64 = 200;
const OFFLOAD_ID: u16 = 1;

/// Loads KEYS records, reads them all back, deletes the odd ones, and
/// verifies membership.
struct KvClient {
    phase: u8,
    cursor: u64,
    verified: u64,
    deleted: u64,
}

impl KvClient {
    fn key(i: u64) -> Vec<u8> {
        format!("user{i:06}").into_bytes()
    }
    fn value(i: u64) -> Vec<u8> {
        format!("value-for-{i}").into_bytes()
    }
    fn send(&self, api: &mut ClientApi<'_, '_>, req: &KvRequest) {
        let key = match req {
            KvRequest::Put { key, .. } | KvRequest::Get { key } | KvRequest::Delete { key } => key,
        };
        let mn = api.mn_macs()[partition_of(key, api.mn_macs().len())];
        api.offload(mn, OFFLOAD_ID, req.opcode(), req.encode());
    }
}

impl ClientDriver for KvClient {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        self.send(api, &KvRequest::Put { key: Self::key(0), value: Self::value(0) });
    }

    fn on_completion(&mut self, api: &mut ClientApi<'_, '_>, c: AppCompletion) {
        let data = match &c.result {
            Ok(clio_cn::CompletionValue::Data(d)) => d.clone(),
            Ok(_) => bytes::Bytes::new(),
            Err(e) => panic!("kv op failed: {e}"),
        };
        match self.phase {
            0 => {
                // Loading.
                self.cursor += 1;
                if self.cursor < KEYS {
                    let (k, v) = (Self::key(self.cursor), Self::value(self.cursor));
                    self.send(api, &KvRequest::Put { key: k, value: v });
                } else {
                    self.phase = 1;
                    self.cursor = 0;
                    self.send(api, &KvRequest::Get { key: Self::key(0) });
                }
            }
            1 => {
                // Read-back verification.
                let resp = KvResponse::decode(clio_proto::Status::Ok, data);
                match resp {
                    KvResponse::Value(v) => assert_eq!(&v[..], &Self::value(self.cursor)[..]),
                    other => panic!("expected value for key {}: {other:?}", self.cursor),
                }
                self.verified += 1;
                self.cursor += 1;
                if self.cursor < KEYS {
                    self.send(api, &KvRequest::Get { key: Self::key(self.cursor) });
                } else {
                    self.phase = 2;
                    self.cursor = 1;
                    self.send(api, &KvRequest::Delete { key: Self::key(1) });
                }
            }
            2 => {
                // Delete the odd keys.
                self.deleted += 1;
                self.cursor += 2;
                if self.cursor < KEYS {
                    self.send(api, &KvRequest::Delete { key: Self::key(self.cursor) });
                } else {
                    self.phase = 3;
                }
            }
            _ => {}
        }
    }
}

fn main() {
    let mut cfg = ClusterConfig::testbed();
    cfg.cns = 1;
    cfg.mns = 2;
    cfg.board = CBoardConfig::test_small();
    let mut cluster = Cluster::build(&cfg);
    for mn in 0..2 {
        cluster.install_offload(mn, OFFLOAD_ID, Pid(9000 + mn as u64), Box::new(ClioKv::new(1024)));
    }
    cluster.add_driver(
        0,
        Pid(1),
        Box::new(KvClient { phase: 0, cursor: 0, verified: 0, deleted: 0 }),
    );
    cluster.start();
    cluster.run_until_idle();

    let client: &KvClient = cluster.cn(0).driver(0);
    println!("loaded {KEYS} records across 2 memory nodes");
    println!("verified {} reads, deleted {} records", client.verified, client.deleted);
    for mn in 0..2 {
        let stats = cluster.mn(mn).stats();
        println!("mn{mn}: {} offload calls served", stats.offload_calls);
    }
    assert_eq!(client.verified, KEYS);
    println!("done at virtual time {}", cluster.now());
}
