//! The radix-tree index with its pointer-chasing offload (paper §6): the
//! tree lives in ordinary remote memory; a search calls the extend-path
//! `PointerChase` offload once per level instead of paying one network round
//! trip per node.
//!
//! Run with: `cargo run --release --example pointer_chase`

use clio_apps::radix::{build_tree, encode_chase, search_digits, PointerChase, NODE_BYTES};
use clio_core::runtime::BlockingCluster;
use clio_core::ClusterConfig;

const ENTRIES: u64 = 4000;
const FANOUT: u64 = 16;
const OFFLOAD_ID: u16 = 2;

fn main() {
    let mut cfg = ClusterConfig::test_small();
    cfg.board.hw.phys_mem_bytes = 64 << 20;
    let mut cluster = BlockingCluster::new(&cfg);
    // The offload shares the caller's address space, so the tree the client
    // builds with plain rwrites is directly visible to it.
    cluster.cluster.install_offload_shared(0, OFFLOAD_ID, Box::new(PointerChase::new()));

    cluster.spawn(0, 7, |p| {
        // Build the tree in remote memory with ordinary writes.
        let nodes = ENTRIES * 2 + FANOUT;
        let base = p.ralloc(nodes * NODE_BYTES + 4096).expect("ralloc");
        let (writes, heads, levels) = build_tree(base, ENTRIES, FANOUT);
        println!("built a {levels}-level radix tree: {} nodes", writes.len());
        for (va, bytes) in &writes {
            p.rwrite(*va, bytes).expect("write node");
        }

        // Search: one offload call per level.
        for key in [0u64, 1, 17, 1023, ENTRIES - 1] {
            let digits = search_digits(key, FANOUT, levels);
            let mut head = heads[0];
            for d in digits {
                let reply =
                    p.offload_call(0, OFFLOAD_ID, 0, &encode_chase(head, d)).expect("chase");
                head = u64::from_le_bytes(reply[..8].try_into().expect("8 B"));
                assert_ne!(head, 0, "key {key} must exist");
            }
            let found = head - 1; // leaves store key + 1
            println!("search({key}) -> {found} in {levels} offload calls");
            assert_eq!(found, key);
        }

        // A key that does not exist (but is within the tree's digit space)
        // comes back null at some level.
        let digits = search_digits(ENTRIES + 5, FANOUT, levels);
        let mut head = heads[0];
        let mut found = true;
        for d in digits {
            let reply = p.offload_call(0, OFFLOAD_ID, 0, &encode_chase(head, d)).expect("chase");
            head = u64::from_le_bytes(reply[..8].try_into().expect("8 B"));
            if head == 0 {
                found = false;
                break;
            }
        }
        assert!(!found, "missing key must not be found");
        println!("search({}) -> not found (as expected)", ENTRIES + 5);
    });

    cluster.run();
    println!("done at {}", cluster.cluster.now());
}
