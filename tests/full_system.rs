//! Whole-system integration tests through the facade crate: every layer
//! (CLib → transport → fabric → CBoard → offloads → controller) in one
//! process, exercised the way a downstream user would.

use clio::apps::kv::{partition_of, ClioKv, KvRequest, KvResponse};
use clio::cn::CompletionValue;
use clio::mn::CBoardConfig;
use clio::proto::{Pid, Status};
use clio::sim::SimDuration;
use clio::system::runtime::BlockingCluster;
use clio::system::{AppCompletion, ClientApi, ClientDriver, Cluster, ClusterConfig};

#[test]
fn blocking_api_roundtrip_with_locks_and_async() {
    let mut cluster = BlockingCluster::new(&ClusterConfig::test_small());
    cluster.spawn(0, 1, |p| {
        let buf = p.ralloc(16 << 10).expect("ralloc");
        let lock = p.ralloc(8).expect("lock page");

        p.rlock(lock).expect("rlock");
        let handles: Vec<_> =
            (0..4).map(|i| p.rwrite_async(buf + i * 4096, &[i as u8 + 1; 128])).collect();
        p.runlock(lock).expect("runlock");
        p.rpoll(&handles).expect("rpoll");
        p.rfence().expect("rfence");

        for i in 0..4u64 {
            let back = p.rread(buf + i * 4096, 128).expect("rread");
            assert!(back.iter().all(|&b| b == i as u8 + 1));
        }
        p.rfree(buf, 16 << 10).expect("rfree");
        assert!(p.rread(buf, 8).is_err(), "freed memory must not read");
    });
    cluster.run();
}

#[test]
fn kv_store_across_partitioned_mns() {
    struct Loader {
        n: u64,
        done: u64,
        phase: u8,
        hits: u64,
    }
    impl Loader {
        fn send(&self, api: &mut ClientApi<'_, '_>, req: &KvRequest) {
            let key = match req {
                KvRequest::Put { key, .. } | KvRequest::Get { key } | KvRequest::Delete { key } => {
                    key
                }
            };
            let mn = api.mn_macs()[partition_of(key, api.mn_macs().len())];
            api.offload(mn, 1, req.opcode(), req.encode());
        }
    }
    impl ClientDriver for Loader {
        fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
            self.send(api, &KvRequest::Put { key: b"k000".to_vec(), value: b"v000".to_vec() });
        }
        fn on_completion(&mut self, api: &mut ClientApi<'_, '_>, c: AppCompletion) {
            assert!(c.result.is_ok(), "kv op failed: {:?}", c.result);
            self.done += 1;
            if self.phase == 0 {
                if self.done < self.n {
                    let k = format!("k{:03}", self.done).into_bytes();
                    let v = format!("v{:03}", self.done).into_bytes();
                    self.send(api, &KvRequest::Put { key: k, value: v });
                } else {
                    self.phase = 1;
                    self.done = 0;
                    self.send(api, &KvRequest::Get { key: b"k000".to_vec() });
                }
            } else {
                if let Ok(CompletionValue::Data(d)) = &c.result {
                    let expect = format!("v{:03}", self.done - 1);
                    assert_eq!(
                        KvResponse::decode(Status::Ok, d.clone()),
                        KvResponse::Value(bytes::Bytes::from(expect.into_bytes()))
                    );
                    self.hits += 1;
                }
                if self.done < self.n {
                    let k = format!("k{:03}", self.done).into_bytes();
                    self.send(api, &KvRequest::Get { key: k });
                }
            }
        }
    }

    let mut cfg = ClusterConfig::test_small();
    cfg.mns = 3;
    let mut cluster = Cluster::build(&cfg);
    for mn in 0..3 {
        cluster.install_offload(mn, 1, Pid(9000 + mn as u64), Box::new(ClioKv::new(512)));
    }
    cluster.add_driver(0, Pid(5), Box::new(Loader { n: 60, done: 0, phase: 0, hits: 0 }));
    cluster.start();
    cluster.run_until_idle();
    let l: &Loader = cluster.cn(0).driver(0);
    assert_eq!(l.hits, 60, "all keys must be found across partitions");
    // Every MN served some traffic.
    for mn in 0..3 {
        assert!(cluster.mn(mn).stats().offload_calls > 0, "mn{mn} idle");
    }
}

#[test]
fn lossy_network_preserves_correctness_end_to_end() {
    let mut cfg = ClusterConfig::test_small();
    cfg.board = CBoardConfig::test_small();
    let mut cluster = BlockingCluster::new(&cfg);
    // 10% loss + 5% corruption toward the MN after setup.
    let mn_mac = cluster.cluster.mn_macs()[0];
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    cluster.spawn(0, 3, move |p| {
        let buf = p.ralloc(64 << 10).expect("ralloc");
        tx.send(buf).expect("publish");
        for i in 0..40u64 {
            p.rwrite(buf + i * 512, &[i as u8; 512]).expect("write survives loss");
        }
        for i in 0..40u64 {
            let b = p.rread(buf + i * 512, 512).expect("read survives loss");
            assert!(b.iter().all(|&x| x == i as u8), "data corrupted at {i}");
        }
    });
    let _ = rx;
    // Inject faults once the cluster exists (before running).
    cluster.cluster.net.set_faults(
        &mut cluster.cluster.sim,
        mn_mac,
        clio::net::FaultInjector {
            loss_prob: 0.10,
            corrupt_prob: 0.05,
            jitter: SimDuration::from_micros(30),
        },
    );
    cluster.run();
    let retries = cluster.cn_of_bridge(0).clib().retry_count();
    assert!(retries > 0, "faults should have caused retries (got {retries})");
}

#[test]
fn deterministic_full_cluster_replay() {
    let run = || {
        let mut cfg = ClusterConfig::test_small();
        cfg.mns = 2;
        cfg.seed = 77;
        let mut cluster = Cluster::build(&cfg);
        struct Worker {
            left: u32,
            va: u64,
        }
        impl ClientDriver for Worker {
            fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
                api.alloc(8192, clio::proto::Perm::RW);
            }
            fn on_completion(&mut self, api: &mut ClientApi<'_, '_>, c: AppCompletion) {
                if self.va == 0 {
                    self.va = c.va();
                }
                if self.left > 0 {
                    self.left -= 1;
                    if self.left.is_multiple_of(2) {
                        api.read(self.va, 64);
                    } else {
                        api.write(self.va, bytes::Bytes::from(vec![1u8; 64]));
                    }
                }
            }
        }
        for i in 0..6u64 {
            cluster.add_driver(0, Pid(i), Box::new(Worker { left: 30, va: 0 }));
        }
        cluster.start();
        cluster.run_until_idle();
        (cluster.sim.digest(), cluster.sim.events_dispatched())
    };
    assert_eq!(run(), run());
}
