//! Whole-system integration tests through the facade crate: every layer
//! (CLib → transport → fabric → CBoard → offloads → controller) in one
//! process, exercised the way a downstream user would.

use clio::apps::kv::{partition_of, ClioKv, KvRequest, KvResponse};
use clio::cn::CompletionValue;
use clio::mn::CBoardConfig;
use clio::proto::{Pid, Status};
use clio::sim::SimDuration;
use clio::system::node::{PokeDriver, POKE_TAG};
use clio::system::runtime::BlockingCluster;
use clio::system::{AppCompletion, ClientApi, ClientDriver, Cluster, ClusterConfig};

#[test]
fn blocking_api_roundtrip_with_locks_and_async() {
    let mut cluster = BlockingCluster::new(&ClusterConfig::test_small());
    cluster.spawn(0, 1, |p| {
        let buf = p.ralloc(16 << 10).expect("ralloc");
        let lock = p.ralloc(8).expect("lock page");

        p.rlock(lock).expect("rlock");
        let handles: Vec<_> =
            (0..4).map(|i| p.rwrite_async(buf + i * 4096, &[i as u8 + 1; 128])).collect();
        p.runlock(lock).expect("runlock");
        p.rpoll(&handles).expect("rpoll");
        p.rfence().expect("rfence");

        for i in 0..4u64 {
            let back = p.rread(buf + i * 4096, 128).expect("rread");
            assert!(back.iter().all(|&b| b == i as u8 + 1));
        }
        p.rfree(buf, 16 << 10).expect("rfree");
        assert!(p.rread(buf, 8).is_err(), "freed memory must not read");
    });
    cluster.run();
}

#[test]
fn kv_store_across_partitioned_mns() {
    struct Loader {
        n: u64,
        done: u64,
        phase: u8,
        hits: u64,
    }
    impl Loader {
        fn send(&self, api: &mut ClientApi<'_, '_>, req: &KvRequest) {
            let key = match req {
                KvRequest::Put { key, .. } | KvRequest::Get { key } | KvRequest::Delete { key } => {
                    key
                }
            };
            let mn = api.mn_macs()[partition_of(key, api.mn_macs().len())];
            api.offload(mn, 1, req.opcode(), req.encode());
        }
    }
    impl ClientDriver for Loader {
        fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
            self.send(api, &KvRequest::Put { key: b"k000".to_vec(), value: b"v000".to_vec() });
        }
        fn on_completion(&mut self, api: &mut ClientApi<'_, '_>, c: AppCompletion) {
            assert!(c.result.is_ok(), "kv op failed: {:?}", c.result);
            self.done += 1;
            if self.phase == 0 {
                if self.done < self.n {
                    let k = format!("k{:03}", self.done).into_bytes();
                    let v = format!("v{:03}", self.done).into_bytes();
                    self.send(api, &KvRequest::Put { key: k, value: v });
                } else {
                    self.phase = 1;
                    self.done = 0;
                    self.send(api, &KvRequest::Get { key: b"k000".to_vec() });
                }
            } else {
                if let Ok(CompletionValue::Data(d)) = &c.result {
                    let expect = format!("v{:03}", self.done - 1);
                    assert_eq!(
                        KvResponse::decode(Status::Ok, d.clone()),
                        KvResponse::Value(bytes::Bytes::from(expect.into_bytes()))
                    );
                    self.hits += 1;
                }
                if self.done < self.n {
                    let k = format!("k{:03}", self.done).into_bytes();
                    self.send(api, &KvRequest::Get { key: k });
                }
            }
        }
    }

    let mut cfg = ClusterConfig::test_small();
    cfg.mns = 3;
    let mut cluster = Cluster::build(&cfg);
    for mn in 0..3 {
        cluster.install_offload(mn, 1, Pid(9000 + mn as u64), Box::new(ClioKv::new(512)));
    }
    cluster.add_driver(0, Pid(5), Box::new(Loader { n: 60, done: 0, phase: 0, hits: 0 }));
    cluster.start();
    cluster.run_until_idle();
    let l: &Loader = cluster.cn(0).driver(0);
    assert_eq!(l.hits, 60, "all keys must be found across partitions");
    // Every MN served some traffic.
    for mn in 0..3 {
        assert!(cluster.mn(mn).stats().offload_calls > 0, "mn{mn} idle");
    }
}

#[test]
fn lossy_network_preserves_correctness_end_to_end() {
    let mut cfg = ClusterConfig::test_small();
    cfg.board = CBoardConfig::test_small();
    let mut cluster = BlockingCluster::new(&cfg);
    // 10% loss + 5% corruption toward the MN after setup.
    let mn_mac = cluster.cluster.mn_macs()[0];
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    cluster.spawn(0, 3, move |p| {
        let buf = p.ralloc(64 << 10).expect("ralloc");
        tx.send(buf).expect("publish");
        for i in 0..40u64 {
            p.rwrite(buf + i * 512, &[i as u8; 512]).expect("write survives loss");
        }
        for i in 0..40u64 {
            let b = p.rread(buf + i * 512, 512).expect("read survives loss");
            assert!(b.iter().all(|&x| x == i as u8), "data corrupted at {i}");
        }
    });
    let _ = rx;
    // Inject faults once the cluster exists (before running).
    cluster.cluster.net.set_faults(
        &mut cluster.cluster.sim,
        mn_mac,
        clio::net::FaultInjector {
            loss_prob: 0.10,
            corrupt_prob: 0.05,
            jitter: SimDuration::from_micros(30),
            ..clio::net::FaultInjector::none()
        },
    );
    cluster.run();
    let retries = cluster.cn_of_bridge(0).clib().retry_count();
    assert!(retries > 0, "faults should have caused retries (got {retries})");
}

/// Tier-2 scenario: incast corruption storm. 8 CNs fire 64 small reads
/// each at one MN and every batch frame of the first wave is corrupted
/// (deterministically, via `corrupt_next`). Recovery must complete with
/// the same data as a clean run, and the error path must stay coalesced:
/// NACKs ship as `BatchNack` frames and retries re-batch, so NACK and
/// retry frame counts stay within 2 × ceil(n / batch_max_ops) per
/// direction.
#[test]
fn incast_corruption_storm_recovers_with_coalesced_frames() {
    const CNS: usize = 8;
    const READS: u64 = 64;
    const OP: u64 = 64; // bytes per read; 64 x 64 B = one 4 KiB page

    /// Allocates + initializes a page on start, then waits for a poke to
    /// fire its 64-read burst through the scatter/gather API.
    struct IncastReader {
        va: u64,
        burst_fired: bool,
        data: Vec<(u64, bytes::Bytes)>,
    }
    impl ClientDriver for IncastReader {
        fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
            api.alloc(READS * OP, clio::proto::Perm::RW);
        }
        fn on_completion(&mut self, api: &mut ClientApi<'_, '_>, c: AppCompletion) {
            if self.va == 0 {
                self.va = c.va();
                let pattern: Vec<u8> = (0..READS * OP).map(|i| (i / OP) as u8).collect();
                api.write(self.va, bytes::Bytes::from(pattern));
                return;
            }
            if self.burst_fired {
                self.data.push((c.token.0, c.data().clone()));
            }
        }
        fn on_wake(&mut self, api: &mut ClientApi<'_, '_>, tag: u64) {
            if tag == POKE_TAG && !self.burst_fired {
                self.burst_fired = true;
                let reads: Vec<(u64, u32)> =
                    (0..READS).map(|i| (self.va + i * OP, OP as u32)).collect();
                api.read_v(&reads);
            }
        }
    }

    let run_storm = |corrupt: bool| {
        let mut cfg = ClusterConfig::test_small();
        cfg.cns = CNS;
        cfg.board = CBoardConfig::test_small();
        // Window wide enough that the whole burst ships at once: the frame
        // counts then measure framing policy, not the congestion window.
        cfg.clib.cwnd_init = 128.0;
        cfg.clib.cwnd_max = 256.0;
        let mut cluster = Cluster::build(&cfg);
        for cn in 0..CNS {
            cluster.add_driver(
                cn,
                Pid(100 + cn as u64),
                Box::new(IncastReader { va: 0, burst_fired: false, data: vec![] }),
            );
        }
        // Phase 1 (fault-free): allocations + pattern writes drain.
        cluster.start();
        cluster.run_until_idle();

        let mn_mac = cluster.mn_macs()[0];
        let stats0 = cluster.mn(0).stats();
        let retries0: u64 = (0..CNS).map(|i| cluster.cn(i).clib().retry_frames()).sum();
        if corrupt {
            // Corrupt exactly the first wave: 8 CNs x ceil(64/16) frames.
            let frames = CNS as u32 * (READS as u32).div_ceil(cfg.clib.batch_max_ops);
            cluster.net.set_faults(
                &mut cluster.sim,
                mn_mac,
                clio::net::FaultInjector {
                    corrupt_next: frames,
                    ..clio::net::FaultInjector::none()
                },
            );
        }
        // Phase 2: every CN fires its burst at the same instant (incast).
        let cn_ids: Vec<_> = cluster.cn_ids().to_vec();
        for cn in cn_ids {
            cluster.sim.post(cn, clio::sim::Message::new(PokeDriver { driver: 0 }));
        }
        cluster.run_until_idle();

        let mut per_cn: Vec<Vec<bytes::Bytes>> = Vec::new();
        let mut per_cn_rx_frames: Vec<u64> = Vec::new();
        for cn in 0..CNS {
            let d: &IncastReader = cluster.cn(cn).driver(0);
            assert!(d.burst_fired, "cn{cn} never fired its burst");
            let mut data = d.data.clone();
            assert_eq!(data.len() as u64, READS, "cn{cn}: a read never completed");
            data.sort_by_key(|(t, _)| *t);
            per_cn.push(data.into_iter().map(|(_, b)| b).collect());
            // Frames delivered to this CN (responses + NACKs), per port.
            let mac = cluster.cn(cn).mac();
            per_cn_rx_frames.push(cluster.net.port_stats(&cluster.sim, mac).tx_frames);
        }
        let stats = cluster.mn(0).stats();
        let retry_frames: u64 =
            (0..CNS).map(|i| cluster.cn(i).clib().retry_frames()).sum::<u64>() - retries0;
        (
            per_cn,
            stats.rx_frames - stats0.rx_frames,
            stats.nacks - stats0.nacks,
            stats.nack_frames - stats0.nack_frames,
            retry_frames,
            per_cn_rx_frames,
        )
    };

    let (clean_data, clean_rx, clean_nacks, _, _, clean_cn_rx) = run_storm(false);
    let (storm_data, storm_rx, storm_nacks, storm_nack_frames, storm_retry_frames, storm_cn_rx) =
        run_storm(true);

    // Recovery is complete and observationally clean.
    assert_eq!(clean_nacks, 0, "clean run must not NACK");
    assert_eq!(storm_data, clean_data, "storm results diverge from the clean run");
    for (cn, data) in storm_data.iter().enumerate() {
        for (i, d) in data.iter().enumerate() {
            assert!(
                d.iter().all(|&b| b == i as u8),
                "cn{cn} read {i} returned corrupted data after recovery"
            );
        }
    }

    // Frame-efficiency bars: ceil(64/16) = 4 frames per CN per wave.
    let ceil_frames = READS.div_ceil(16);
    assert_eq!(clean_rx, CNS as u64 * ceil_frames, "clean bursts batch fully");
    assert_eq!(storm_nacks, CNS as u64 * READS, "every entry of every corrupted frame NACKed");
    assert!(
        storm_nack_frames <= CNS as u64 * 2 * ceil_frames,
        "NACKs must coalesce: {storm_nack_frames} frames for {CNS} CNs (bound {})",
        CNS as u64 * 2 * ceil_frames
    );
    assert!(
        storm_retry_frames <= CNS as u64 * 2 * ceil_frames,
        "retries must coalesce: {storm_retry_frames} frames (bound {})",
        CNS as u64 * 2 * ceil_frames
    );
    assert!(
        storm_rx <= 2 * clean_rx,
        "request direction doubled at worst: {storm_rx} vs clean {clean_rx}"
    );
    // Per-CN response direction: the storm adds at most the coalesced NACK
    // frames on top of what the clean run delivered to that CN's port.
    for cn in 0..CNS {
        assert!(
            storm_cn_rx[cn] <= clean_cn_rx[cn] + 2 * ceil_frames,
            "cn{cn}: {} frames delivered during the storm vs {} clean (NACK bound {})",
            storm_cn_rx[cn],
            clean_cn_rx[cn],
            2 * ceil_frames
        );
    }
}

#[test]
fn deterministic_full_cluster_replay() {
    let run = || {
        let mut cfg = ClusterConfig::test_small();
        cfg.mns = 2;
        cfg.seed = 77;
        let mut cluster = Cluster::build(&cfg);
        struct Worker {
            left: u32,
            va: u64,
        }
        impl ClientDriver for Worker {
            fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
                api.alloc(8192, clio::proto::Perm::RW);
            }
            fn on_completion(&mut self, api: &mut ClientApi<'_, '_>, c: AppCompletion) {
                if self.va == 0 {
                    self.va = c.va();
                }
                if self.left > 0 {
                    self.left -= 1;
                    if self.left.is_multiple_of(2) {
                        api.read(self.va, 64);
                    } else {
                        api.write(self.va, bytes::Bytes::from(vec![1u8; 64]));
                    }
                }
            }
        }
        for i in 0..6u64 {
            cluster.add_driver(0, Pid(i), Box::new(Worker { left: 30, va: 0 }));
        }
        cluster.start();
        cluster.run_until_idle();
        (cluster.sim.digest(), cluster.sim.events_dispatched())
    };
    assert_eq!(run(), run());
}
