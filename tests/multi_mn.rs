//! Tier-2 multi-MN scenarios: a sharded address space across two memory
//! boards with the controller as the allocation/routing authority.
//!
//! The first test drives pressure-triggered live migration under traffic:
//! a CN inflates one board's physical utilization past the cluster's
//! pressure threshold, the controller picks the coldest range on that
//! board and moves it to the roomier one mid-traffic, and every observable
//! invariant must hold — reads of the moving range stay byte-identical
//! throughout, every CN's routing cache converges on the new owner, window
//! accounting drains to zero, and the controller's per-MN `placed_bytes`
//! balances exactly against the live ranges it tracks.
//!
//! The second is the CI smoke: a 4 CN x 2 MN burst with one forced
//! migration must produce byte-identical results to a single-MN run of the
//! same workload, and the whole run must be digest-stable.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use clio::mn::migrate::MigrateCommand;
use clio::net::Mac;
use clio::proto::{Perm, Pid};
use clio::sim::{Message, SimDuration};
use clio::system::node::PokeDriver;
use clio::system::{Cluster, ClusterConfig};

const PAGE: u64 = 4 << 10;
const CHUNK: u64 = 2 << 10;

/// `(label, pid, va, len)` of every completed allocation.
type RangeLog = Rc<RefCell<Vec<(&'static str, Pid, u64, u64)>>>;
/// `(cn, bytes read back)` per task.
type ReadLog = Rc<RefCell<Vec<(usize, Vec<u8>)>>>;

/// Writes `len` bytes at `va` as 2 KiB chunks, chunk `c` filled with
/// `fill(c)`.
async fn write_pattern(
    p: &clio::system::exec::ProcHandle,
    va: u64,
    len: u64,
    fill: impl Fn(u64) -> u8,
) {
    for c in 0..len / CHUNK {
        p.rwrite(va + c * CHUNK, Bytes::from(vec![fill(c); CHUNK as usize])).await;
    }
}

/// Reads the same chunks back and asserts every byte.
async fn verify_pattern(
    p: &clio::system::exec::ProcHandle,
    va: u64,
    len: u64,
    fill: impl Fn(u64) -> u8,
) {
    for c in 0..len / CHUNK {
        let got = p.rread(va + c * CHUNK, CHUNK as u32).await;
        assert!(
            got.data().iter().all(|&b| b == fill(c)),
            "chunk {c} at {:#x} corrupted",
            va + c * CHUNK
        );
    }
}

/// 4 CNs x 2 MNs with live migration triggered by memory pressure while
/// reads of the migrating range are in flight.
///
/// Placement determinism (policy: most free physical bytes, ties to the
/// first-registered board) pins the layout: the 16 KiB victim lands on
/// mn0, the untouched 1 MiB pad on mn1, the 512 KiB filler back on mn0,
/// and the three peer ranges on mn0. Touching all 128 filler pages pushes
/// mn0's utilization past the 5% threshold (2048-page board), so the
/// controller migrates mn0's least-recently-allocated range — the victim —
/// to mn1 while its owner keeps re-reading it.
#[test]
fn pressure_triggered_migration_keeps_reads_correct_under_traffic() {
    const VICTIM_LEN: u64 = 16 << 10;
    const PAD_LEN: u64 = 1 << 20;
    const FILLER_LEN: u64 = 512 << 10;
    const PEER_LEN: u64 = 16 << 10;

    let mut cfg = ClusterConfig::test_small();
    cfg.cns = 4;
    cfg.mns = 2;
    // 2048 x 4 KiB pages per board: ~103 touched pages cross the bar.
    cfg.pressure_threshold = 0.05;
    let mut cluster = Cluster::build(&cfg);
    let mn_macs = cluster.mn_macs().to_vec();

    let ranges: RangeLog = Rc::new(RefCell::new(vec![]));
    let verified = Rc::new(Cell::new(0u32));

    let victim_fill = |c: u64| 0xB0 ^ c as u8;
    let (r0, v0) = (ranges.clone(), verified.clone());
    cluster.spawn(0, Pid(100), move |p| async move {
        // All three placements back-to-back, before any (slow) writes and
        // before the peers wake, so the free-memory policy is pinned:
        // victim -> mn0 (tie to the first board), pad -> mn1 (most free),
        // filler -> mn0, and the later peer ranges -> mn0. The victim is
        // the oldest range on mn0, so it is the migration victim.
        let victim = p.ralloc(VICTIM_LEN, Perm::RW).await.va();
        let pad = p.ralloc(PAD_LEN, Perm::RW).await.va();
        let filler = p.ralloc(FILLER_LEN, Perm::RW).await.va();
        r0.borrow_mut().push(("victim", Pid(100), victim, VICTIM_LEN));
        r0.borrow_mut().push(("pad", Pid(100), pad, PAD_LEN));
        r0.borrow_mut().push(("filler", Pid(100), filler, FILLER_LEN));

        write_pattern(&p, victim, VICTIM_LEN, victim_fill).await;
        verify_pattern(&p, victim, VICTIM_LEN, victim_fill).await;
        v0.set(v0.get() + 1);

        // Fault in every filler page; utilization crosses the threshold
        // partway through and the controller starts migrating the victim.
        // Re-reading the victim between touch groups lands accesses inside
        // the migration window: mid-flight they are refused with Conflict
        // and retried by CLib, post-move they re-route to the new owner;
        // the bytes must never change.
        let pages = FILLER_LEN / PAGE;
        for group in 0..8 {
            for page in (group * pages / 8)..((group + 1) * pages / 8) {
                p.rwrite(filler + page * PAGE, Bytes::from_static(b"touch!!!")).await;
            }
            verify_pattern(&p, victim, VICTIM_LEN, victim_fill).await;
            v0.set(v0.get() + 1);
        }
        for _ in 0..4 {
            p.sleep(SimDuration::from_micros(25)).await;
            verify_pattern(&p, victim, VICTIM_LEN, victim_fill).await;
            v0.set(v0.get() + 1);
        }
    });

    for cn in 1..4usize {
        let (r, v) = (ranges.clone(), verified.clone());
        let pid = Pid(100 + cn as u64);
        let fill = move |c: u64| (0x40 + cn as u8) ^ c as u8;
        cluster.spawn(cn, pid, move |p| async move {
            // Start after cn0's three placements so the layout is fixed.
            p.sleep(SimDuration::from_micros(60)).await;
            let va = p.ralloc(PEER_LEN, Perm::RW).await.va();
            write_pattern(&p, va, PEER_LEN, fill).await;
            r.borrow_mut().push(("peer", pid, va, PEER_LEN));
            verify_pattern(&p, va, PEER_LEN, fill).await;
            v.set(v.get() + 1);
            for _ in 0..6 {
                p.sleep(SimDuration::from_micros(30)).await;
                verify_pattern(&p, va, PEER_LEN, fill).await;
                v.set(v.get() + 1);
            }
        });
    }

    cluster.start();
    cluster.run_until_idle();

    // Every read of every range verified, with no op left in flight.
    assert_eq!(verified.get(), 13 + 3 * 7, "a verification pass went missing");
    for cn in 0..4 {
        assert_eq!(cluster.cn(cn).clib().in_flight(), 0, "cn{cn} window did not drain");
    }

    // Exactly one migration: mn0 reported pressure once (the latch holds
    // while it stays above threshold) and the victim moved to mn1, which
    // stays far below the bar.
    let ctrl = cluster.controller();
    assert_eq!(ctrl.migration_stats(), (1, 1), "expected one committed migration");

    let ranges = ranges.borrow();
    assert_eq!(ranges.len(), 6, "an allocation never completed");
    let find = |label: &str| *ranges.iter().find(|(l, ..)| *l == label).expect(label);
    let (_, vpid, vva, vlen) = find("victim");
    let (_, fpid, fva, _) = find("filler");
    assert_eq!(ctrl.owner_of(vpid, vva), Some(mn_macs[1]), "victim must land on mn1");
    assert_eq!(ctrl.owner_of(fpid, fva), Some(mn_macs[0]), "filler must stay on mn0");

    // The RouteUpdate broadcast converged every CN's routing cache on the
    // new owner — including CNs that never touched the victim.
    for cn in 0..4 {
        assert_eq!(
            cluster.cn(cn).route_of(vpid, vva, vlen),
            Some(mn_macs[1]),
            "cn{cn} still routes the victim to the old owner"
        );
    }

    // Placement accounting balances exactly: each MN's placed_bytes equals
    // the sizes of the live ranges the controller currently maps to it.
    let mut expected = [0u64; 2];
    for &(_, pid, va, len) in ranges.iter() {
        let owner = ctrl.owner_of(pid, va).expect("live range has an owner");
        let i = mn_macs.iter().position(|&m| m == owner).expect("owner is a cluster MN");
        expected[i] += len;
    }
    for (i, &mac) in mn_macs.iter().enumerate() {
        assert_eq!(
            ctrl.placed_bytes_of(mac),
            expected[i],
            "mn{i} placed_bytes out of balance with tracked ranges"
        );
    }
}

/// CI smoke: 4 CNs burst against 2 MNs, one range is forcibly migrated
/// between the write and read phases, and the reads must be byte-identical
/// to the same workload on a single MN. Rerunning the sharded config with
/// the same seed must reproduce the run digest exactly.
#[test]
fn multi_mn_smoke_matches_single_mn_baseline_and_is_digest_stable() {
    const LEN: u64 = 16 << 10;

    let run = |mns: usize, migrate: bool| {
        let mut cfg = ClusterConfig::test_small();
        cfg.cns = 4;
        cfg.mns = mns;
        cfg.seed = 0xBEEF;
        let mut cluster = Cluster::build(&cfg);
        let mn_macs = cluster.mn_macs().to_vec();

        let vas: Rc<RefCell<Vec<(usize, Pid, u64)>>> = Rc::new(RefCell::new(vec![]));
        let results: ReadLog = Rc::new(RefCell::new(vec![]));
        for cn in 0..4usize {
            let pid = Pid(300 + cn as u64);
            let fill = move |c: u64| (0x10 * (cn as u8 + 1)).wrapping_add(c as u8);
            let (vas, results) = (vas.clone(), results.clone());
            cluster.spawn(cn, pid, move |p| async move {
                let va = p.ralloc(LEN, Perm::RW).await.va();
                write_pattern(&p, va, LEN, fill).await;
                vas.borrow_mut().push((cn, pid, va));
                p.next_poke().await;
                let mut data = Vec::with_capacity(LEN as usize);
                for c in 0..LEN / CHUNK {
                    data.extend_from_slice(p.rread(va + c * CHUNK, CHUNK as u32).await.data());
                }
                results.borrow_mut().push((cn, data));
            });
        }
        cluster.start();
        cluster.run_until_idle();

        let moved: Option<(Pid, u64, Mac)> = if migrate {
            // Force cn0's range to the other board between the phases.
            let &(_, pid, va) = vas.borrow().iter().find(|(cn, ..)| *cn == 0).expect("cn0 alloc");
            let src = cluster.controller().owner_of(pid, va).expect("owned");
            let src_idx = mn_macs.iter().position(|&m| m == src).expect("cluster MN");
            let dst = mn_macs[1 - src_idx];
            let cmd = MigrateCommand { pid, start: va, len: LEN, dst };
            let board = cluster.mn_ids()[src_idx];
            cluster.sim.post(board, Message::new(cmd));
            cluster.run_until_idle();
            Some((pid, va, dst))
        } else {
            None
        };

        let cn_ids: Vec<_> = cluster.cn_ids().to_vec();
        for id in cn_ids {
            cluster.sim.post(id, Message::new(PokeDriver { driver: 0 }));
        }
        cluster.run_until_idle();

        if let Some((pid, va, dst)) = moved {
            assert_eq!(cluster.controller().owner_of(pid, va), Some(dst));
            for cn in 0..4 {
                assert_eq!(cluster.cn(cn).route_of(pid, va, LEN), Some(dst));
            }
            assert_eq!(cluster.controller().migration_stats().1, 1);
        }
        for cn in 0..4 {
            assert_eq!(cluster.cn(cn).clib().in_flight(), 0, "cn{cn} window did not drain");
        }

        let mut data = results.borrow().clone();
        assert_eq!(data.len(), 4, "a read phase never completed");
        data.sort_by_key(|(cn, _)| *cn);
        let data: Vec<Vec<u8>> = data.into_iter().map(|(_, d)| d).collect();
        (data, cluster.sim.digest(), cluster.sim.events_dispatched())
    };

    let (baseline, _, _) = run(1, false);
    let (sharded, digest_a, events_a) = run(2, true);
    let (_, digest_b, events_b) = run(2, true);

    // The expected bytes, independently of either run.
    for (cn, data) in baseline.iter().enumerate() {
        for (c, chunk) in data.chunks(CHUNK as usize).enumerate() {
            let want = (0x10 * (cn as u8 + 1)).wrapping_add(c as u8);
            assert!(chunk.iter().all(|&b| b == want), "baseline cn{cn} chunk {c} wrong");
        }
    }
    assert_eq!(sharded, baseline, "sharded reads diverge from the single-MN baseline");
    assert_eq!((digest_a, events_a), (digest_b, events_b), "sharded run is not digest-stable");
}
