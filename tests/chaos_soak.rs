//! Tier-2 chaos soak: the full cluster under a seeded crash/flap storm.
//!
//! Eight CNs run an open mix of reads, writes, and deadline-bounded ops
//! against two memory nodes while a [`ChaosSchedule::storm`] power-blips
//! both boards and flaps both board links. The soak asserts the failure
//! model end to end:
//!
//! * **Termination** — every submitted op completes with success or a
//!   typed error (`TimedOut` / `Unreachable` / `DeadlineExceeded`); no op
//!   hangs, every client task runs to its end.
//! * **Conservation** — when the cluster goes idle, every CN transport's
//!   window accounting has drained to zero and the runtime gauges are
//!   clean: chaos may fail ops, never leak slots.
//! * **Durability** — a write acknowledged before a crash is readable,
//!   byte-identical, after the board restarts: committed DRAM survives a
//!   power cycle, only volatile state is lost.
//! * **Determinism** — the same seed yields the identical run digest and
//!   identical observable tallies, twice. Chaos draws no runtime
//!   randomness.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use clio::cn::{ClioError, CompletionValue};
use clio::net::{ChaosSchedule, StormConfig};
use clio::proto::{Perm, Pid};
use clio::sim::SimDuration;
use clio::system::{Cluster, ClusterConfig};

const CNS: usize = 8;
const MNS: usize = 2;
const STORM_OPS: usize = 16;
const DURABLE_LEN: usize = 512;

/// Observable tallies of one soak run, shared by all client tasks.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Tally {
    submitted: u64,
    ok: u64,
    timed_out: u64,
    unreachable: u64,
    deadline_exceeded: u64,
    /// Per-CN flag set by the task's last statement.
    finished: Vec<bool>,
}

impl Tally {
    fn failed(&self) -> u64 {
        self.timed_out + self.unreachable + self.deadline_exceeded
    }
    fn terminated(&self) -> u64 {
        self.ok + self.failed()
    }
    fn count(&mut self, result: &Result<CompletionValue, ClioError>) {
        self.submitted += 1;
        match result {
            Ok(_) => self.ok += 1,
            Err(ClioError::TimedOut { .. }) => self.timed_out += 1,
            Err(ClioError::Unreachable { .. }) => self.unreachable += 1,
            Err(ClioError::DeadlineExceeded) => self.deadline_exceeded += 1,
            Err(other) => panic!("soak op failed with an unexpected error: {other:?}"),
        }
    }
}

fn durable_pattern(cn: usize) -> Bytes {
    Bytes::from(vec![0x40 + cn as u8; DURABLE_LEN])
}

/// Builds, storms, and drains one soak run; returns the cluster (idle) and
/// the tallies.
fn soak(seed: u64) -> (Cluster, ChaosSchedule, Rc<RefCell<Tally>>) {
    let mut cfg = ClusterConfig::test_small();
    cfg.seed = seed;
    cfg.cns = CNS;
    cfg.mns = MNS;
    let mut cluster = Cluster::build(&cfg);

    // Two board power cycles and four link flaps (plus delay spikes),
    // spread over the first 2 ms, hitting both MNs and both board links.
    let mn_macs = cluster.mn_macs().to_vec();
    let storm = ChaosSchedule::storm(seed ^ 0xC4A0, &mn_macs, &mn_macs, StormConfig::default());
    assert!(storm.crashes() >= 2, "storm must power-cycle boards");
    assert!(storm.flaps() >= 4, "storm must flap links");
    cluster.apply_chaos(&storm);

    let tally = Rc::new(RefCell::new(Tally { finished: vec![false; CNS], ..Tally::default() }));
    for cn in 0..CNS {
        let t = tally.clone();
        cluster.spawn(cn, Pid(10 + cn as u64), move |h| async move {
            // Allocation rides the slow path; under chaos it may time out,
            // so insist until it lands (the storm is finite).
            let va = loop {
                let c = h.ralloc(64 << 10, Perm::RW).await;
                t.borrow_mut().count(&c.result);
                if let Ok(CompletionValue::Va(va)) = c.result {
                    break va;
                }
            };
            // Durable write: retried until acknowledged, so by the time the
            // loop exits the bytes are committed on some board.
            loop {
                let c = h.rwrite(va, durable_pattern(cn)).await;
                t.borrow_mut().count(&c.result);
                if c.result.is_ok() {
                    break;
                }
            }
            // Storm traffic: reads and writes paced across the storm
            // window, every third op under a deadline tight enough to beat
            // the retry budget when its board is down.
            for i in 0..STORM_OPS {
                h.sleep(SimDuration::from_micros(120)).await;
                let off = 4096 + (i as u64 % 8) * 4096;
                let c = match i % 3 {
                    0 => {
                        h.with_deadline(h.rread(va + off, 256), SimDuration::from_micros(80)).await
                    }
                    1 => h.rwrite(va + off, Bytes::from(vec![i as u8; 128])).await,
                    _ => h.rread(va + off, 128).await,
                };
                t.borrow_mut().count(&c.result);
            }
            // Durability: after the storm has passed, the committed bytes
            // must read back intact — a restart lost only volatile state.
            h.sleep(SimDuration::from_millis(3)).await;
            loop {
                let c = h.rread(va, DURABLE_LEN as u32).await;
                t.borrow_mut().count(&c.result);
                match c.result {
                    Ok(CompletionValue::Data(d)) => {
                        assert_eq!(
                            d,
                            durable_pattern(cn),
                            "cn{cn}: committed write did not survive the board restart"
                        );
                        break;
                    }
                    Ok(other) => panic!("read returned {other:?}"),
                    Err(_) => continue,
                }
            }
            t.borrow_mut().finished[cn] = true;
        });
    }
    cluster.start();
    cluster.run_until_idle();
    (cluster, storm, tally)
}

#[test]
fn chaos_soak_terminates_conserves_and_preserves_committed_writes() {
    let (cluster, storm, tally) = soak(0x50AC);
    let t = tally.borrow();

    // Termination: every task ran to the end, every op completed.
    for (cn, done) in t.finished.iter().enumerate() {
        assert!(done, "cn{cn}'s task never finished");
    }
    assert_eq!(t.submitted, t.terminated(), "an op vanished without completing");
    assert!(
        t.failed() > 0,
        "the storm failed no ops at all — chaos never bit (schedule: {storm:?})"
    );
    assert!(t.ok as usize >= CNS * (STORM_OPS / 2), "too few ops succeeded: {t:?}");

    // Conservation: all window accounting drained on every CN.
    for cn in 0..CNS {
        let transport = cluster.cn(cn).clib().transport();
        transport.check_invariants().unwrap_or_else(|e| panic!("cn{cn}: {e}"));
        assert_eq!(transport.in_flight(), 0, "cn{cn}: outstanding not drained");
        assert_eq!(transport.queued(), 0, "cn{cn}: send queue not drained");
        assert_eq!(transport.parked(), 0, "cn{cn}: conflict parking not drained");
        assert_eq!(transport.incast_in_flight(), 0, "cn{cn}: incast bytes leaked");
        let snap = cluster.registry().snapshot();
        assert_eq!(snap.gauges[&format!("cn{cn}.runtime.inflight")], 0, "cn{cn} inflight");
        assert_eq!(snap.gauges[&format!("cn{cn}.runtime.parked")], 0, "cn{cn} parked");
    }

    // The storm really happened: every scheduled crash restarted a board,
    // and the boards are back up at idle.
    let restarts: u64 = (0..MNS).map(|i| cluster.mn(i).stats().board_restarts).sum();
    assert_eq!(restarts as usize, storm.crashes(), "crash/restart pairs must all land");
    for i in 0..MNS {
        assert!(cluster.mn(i).alive(), "mn{i} left powered off after the storm");
    }
}

#[test]
fn chaos_soak_is_digest_stable_across_reruns() {
    let (a, _, ta) = soak(0xD1CE);
    let (b, _, tb) = soak(0xD1CE);
    assert_eq!(a.sim.digest(), b.sim.digest(), "same seed must replay to the same digest");
    assert_eq!(a.sim.events_dispatched(), b.sim.events_dispatched(), "event counts diverged");
    assert_eq!(*ta.borrow(), *tb.borrow(), "observable tallies diverged");
    // And a different seed genuinely reshuffles the run.
    let (c, _, _) = soak(0xD1CF);
    assert_ne!(a.sim.digest(), c.sim.digest(), "different seeds should differ");
}
