//! Smoke test of the `clio` facade: every re-exported module resolves to
//! the right crate, and a trivial end-to-end op (alloc → write → read)
//! succeeds through `clio::system::runtime::BlockingCluster`.

use clio::system::runtime::BlockingCluster;
use clio::system::ClusterConfig;

/// Each facade module path resolves and names the type the underlying crate
/// exports (a compile-time check; the `let` bindings keep it honest about
/// value-level paths too).
#[test]
fn facade_reexports_resolve() {
    let _rng: clio::sim::SimRng = clio::sim::SimRng::new(1);
    let _mac: clio::net::Mac = clio::net::Mac(7);
    let _pid: clio::proto::Pid = clio::proto::Pid(1);
    let _status: clio::proto::Status = clio::proto::Status::Ok;
    let _tlb = clio::hw::tlb::Tlb::new(16);
    let _board_cfg = clio::mn::CBoardConfig::default();
    let _cn_cfg = clio::cn::config::CLibConfig::default();
    let _cluster_cfg: clio::system::ClusterConfig = ClusterConfig::test_small();
    let _ycsb = clio::apps::ycsb::YcsbGenerator::paper(clio::apps::ycsb::YcsbMix::C, 1);
    let _rnic = clio::baselines::rdma::RnicParams::connectx5();
}

/// One process allocates remote memory, writes a pattern, reads it back,
/// and frees it — the smallest possible whole-stack round trip.
#[test]
fn alloc_write_read_roundtrip() {
    let mut cluster = BlockingCluster::new(&ClusterConfig::test_small());
    cluster.spawn(0, 1, |p| {
        let va = p.ralloc(4096).expect("ralloc");
        p.rwrite(va, &[0xAB; 64]).expect("rwrite");
        let back = p.rread(va, 64).expect("rread");
        assert_eq!(back.len(), 64);
        assert!(back.iter().all(|&b| b == 0xAB), "readback mismatch");
        p.rfree(va, 4096).expect("rfree");
    });
    cluster.run();
}
