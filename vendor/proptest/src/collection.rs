//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi_inclusive: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64;
        let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_length_in_range() {
        let strat = vec(any::<u8>(), 1..8);
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size() {
        let strat = vec(any::<u8>(), 3usize);
        let mut rng = TestRng::new(2);
        assert_eq!(strat.sample(&mut rng).len(), 3);
    }
}
