//! Sampling helpers (`prop::sample::Index`).

/// A position into a collection whose length is not known at generation
/// time; resolve with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Wraps a raw draw.
    pub fn new(raw: usize) -> Self {
        Index { raw }
    }

    /// Resolves against a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.raw % len
    }
}

#[cfg(test)]
mod tests {
    use super::Index;

    #[test]
    fn index_wraps() {
        assert_eq!(Index::new(7).index(3), 1);
        assert_eq!(Index::new(2).index(3), 2);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn index_empty_panics() {
        Index::new(0).index(0);
    }
}
