//! Offline vendored subset of the [`proptest`](https://docs.rs/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of proptest this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait (`prop_map`, `boxed`), `any`,
//! range and tuple strategies, [`collection::vec`], [`sample::Index`],
//! weighted [`prop_oneof!`], and the [`proptest!`] test macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports the panic from the raw inputs;
//!   the case seed is deterministic, so failures reproduce exactly.
//! * **Deterministic seeding.** Each test derives its stream from the test
//!   name and case index, so runs are reproducible in CI by construction.
//! * `prop_assert*` map to the std `assert*` macros (failures panic rather
//!   than unwind-collect).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Path-compatibility alias so `proptest::prop::...` works like the real
/// crate's prelude `prop` re-export.
pub mod prop {
    pub use crate::{arbitrary, collection, sample, strategy};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::test_runner::seed_from_name(stringify!($name));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::new(base ^ (case as u64).wrapping_mul(
                            0x9E37_79B9_7F4A_7C15,
                        ));
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}
