//! `any::<T>()` — canonical strategies for common types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy backing [`any`] for directly sampleable types.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any { _marker: PhantomData }
    }
}

/// Values drawable straight from the RNG stream.
pub trait AnyValue: Sized {
    /// Draws one value.
    fn any_value(rng: &mut TestRng) -> Self;
}

impl<T: AnyValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::any_value(rng)
    }
}

impl<T: AnyValue> Arbitrary for T {
    type Strategy = Any<T>;
    fn arbitrary() -> Any<T> {
        Any::default()
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl AnyValue for $t {
            fn any_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl AnyValue for bool {
    fn any_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl AnyValue for f64 {
    fn any_value(rng: &mut TestRng) -> Self {
        rng.f64()
    }
}

impl AnyValue for char {
    fn any_value(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + (rng.below(95)) as u8) as char
    }
}

impl<T: AnyValue> AnyValue for Option<T> {
    fn any_value(rng: &mut TestRng) -> Self {
        // Mirror proptest's default: None in 1 of 4 draws.
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::any_value(rng))
        }
    }
}

impl AnyValue for crate::sample::Index {
    fn any_value(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_option_hits_both_variants() {
        let mut rng = TestRng::new(11);
        let strat = any::<Option<u64>>();
        let mut some = false;
        let mut none = false;
        for _ in 0..100 {
            match strat.sample(&mut rng) {
                Some(_) => some = true,
                None => none = true,
            }
        }
        assert!(some && none);
    }
}
