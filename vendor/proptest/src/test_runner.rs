//! Test execution support: per-test configuration and the deterministic RNG
//! that drives sampling.

/// Per-test configuration; only `cases` is honored by this shim.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases (matches proptest's constructor).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream used for all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed; any seed is valid.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Draws the next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Stable seed for a test, derived from its name (FNV-1a), so each property
/// gets an independent but reproducible stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_from_name_differs() {
        assert_ne!(seed_from_name("alpha"), seed_from_name("beta"));
    }
}
