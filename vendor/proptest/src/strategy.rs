//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from the deterministic test
/// RNG. Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Generates with `self`, then with the strategy `f` derives from the
    /// value.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, map: f }
    }

    /// Keeps only values satisfying `f`, retrying on rejection.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, keep: f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn sample(&self, rng: &mut TestRng) -> O::Value {
        (self.map)(self.source.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered the whole draw range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Subtract in the same-width unsigned type so signed spans
                // wider than the half-domain do not sign-extend.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u16..=64).sample(&mut rng);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn signed_range_wider_than_half_domain_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..2000 {
            let v = (-100i8..100).sample(&mut rng);
            assert!((-100..100).contains(&v), "out of range: {v}");
            let w = (i16::MIN..=i16::MAX).sample(&mut rng);
            let _ = w; // full domain: any value is valid
        }
    }

    #[test]
    fn map_and_union_compose() {
        let strat = crate::prop_oneof![
            3 => (0u8..4).prop_map(|v| v as u64),
            1 => Just(99u64),
        ];
        let mut rng = TestRng::new(5);
        let mut hit_just = false;
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v < 4 || v == 99);
            hit_just |= v == 99;
        }
        assert!(hit_just, "weighted arm never sampled");
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = TestRng::new(9);
        let (a, b, c) = (0u8..2, 5u64..6, Just("x")).sample(&mut rng);
        assert!(a < 2);
        assert_eq!(b, 5);
        assert_eq!(c, "x");
    }
}
