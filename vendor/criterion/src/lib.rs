//! Offline vendored subset of the [`criterion`](https://docs.rs/criterion)
//! bench harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API surface the workspace's microbenches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`] with `iter` / `iter_batched` /
//! `iter_batched_ref`, [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated
//! mean-of-samples loop (no outlier analysis or HTML reports); CI only
//! compiles benches (`cargo bench --no-run`), so the statistics here serve
//! local spot-checking.

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// How batched setup output is amortized; the shim sizes batches the same
/// way for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Setup re-runs every iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher { samples, total: Duration::ZERO, iters: 0 }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch costs ~1 ms.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            if t.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += t.elapsed();
            self.iters += batch;
        }
    }

    /// Times `routine` over inputs built by `setup`, consuming each input.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over inputs built by `setup`, passing each by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.iters == 0 {
            println!("{group}/{name}: no iterations recorded");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        println!("{group}/{name}: {ns:.1} ns/iter ({} iters)", self.iters);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark in this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, id);
        self
    }

    /// Ends the group (retained for API parity; reporting is per-bench).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored by the shim
    /// so `cargo bench -- <filter>` does not error).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report("bench", id);
        self
    }

    /// Hook for final reporting (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Criterion benchmark group runner (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new(3);
        b.iter(|| 1 + 1);
        assert!(b.iters >= 3);
        let mut batched = Bencher::new(2);
        batched.iter_batched_ref(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(batched.iters, 2);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| ())
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
