//! Offline vendored subset of the [`rand`](https://docs.rs/rand) 0.8 API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of `rand` the workspace uses: the [`RngCore`] source trait, the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `fill`), and the
//! 0.8-era [`Error`] type. Generators themselves live in the workspace
//! (`clio_sim::SimRng` implements [`RngCore`]); this crate only supplies the
//! trait surface, so distribution quality matches what the call sites do
//! with the raw 64-bit draws.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this
/// workspace's infallible generators; exists for `try_fill_bytes` parity
/// with rand 0.8).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: uniformly random `u32`/`u64`
/// draws and byte filling.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly from the generator's full output
/// (rand's `Standard` distribution, folded into one trait for brevity).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Subtract in the same-width unsigned type so signed spans
                // wider than the half-domain do not sign-extend.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        p > 0.0 && f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring rand 0.8's module layout for the names used here.
pub mod rngs {
    // This workspace brings its own deterministic generators; nothing to
    // re-export, the module exists for path compatibility.
}

#[cfg(test)]
mod tests {
    use super::*;

    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: u16 = rng.gen_range(1u16..=64);
            assert!((1..=64).contains(&i));
        }
    }

    #[test]
    fn signed_range_wider_than_half_domain_stays_in_bounds() {
        let mut rng = XorShift(9);
        for _ in 0..2000 {
            let v: i8 = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
            let w: i8 = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = w; // full domain: any value is valid
            let x: i32 = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&x));
        }
    }

    #[test]
    fn gen_standard_types() {
        let mut rng = XorShift(7);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
