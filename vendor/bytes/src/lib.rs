//! Offline vendored subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io mirror, so the workspace vendors the small part of the `bytes`
//! API it actually uses: [`Bytes`] (a cheaply cloneable immutable buffer),
//! [`BytesMut`] (a growable builder), and the [`BufMut`] write trait. The
//! types are API-compatible with the real crate for every call site in this
//! workspace; swap the `[workspace.dependencies]` path entry for the
//! registry version to use the real thing.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Internally an `Arc<[u8]>` plus a sub-range, so [`Bytes::clone`] and
/// [`Bytes::slice`] are O(1) and never copy the payload.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// Unlike the real crate this copies the slice into the shared `Arc`
    /// representation once per call (clones and sub-slices stay O(1)).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// The number of bytes contained.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range; O(1), shares storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds (len {})",
            self.len()
        );
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits the buffer at `at`; `self` keeps `[0, at)`, the tail is
    /// returned. O(1), shares storage.
    pub fn split_off(&mut self, at: usize) -> Self {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let len = vec.len();
        Bytes { data: vec.into(), start: 0, end: len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(slice: &'static [u8]) -> Self {
        Bytes::from_static(slice)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Self {
        buf.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A unique, growable byte buffer; the mutable counterpart of [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(capacity) }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { vec: vec![0; len] }
    }

    /// The number of bytes contained.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Resizes in place, filling any new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    /// Removes all bytes.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Splits off and returns the tail starting at `at`.
    pub fn split_off(&mut self, at: usize) -> Self {
        BytesMut { vec: self.vec.split_off(at) }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.vec).fmt(f)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec.extend(iter);
    }
}

/// Write access to a growable byte buffer (little-endian helpers only; this
/// workspace's wire format is fixed little-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends the contents of another buffer.
    fn put(&mut self, src: impl AsRef<[u8]>) {
        self.put_slice(src.as_ref());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.slice(..).len(), 3);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytes_split_off() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let tail = b.split_off(1);
        assert_eq!(&b[..], &[1]);
        assert_eq!(&tail[..], &[2, 3, 4]);
    }

    #[test]
    fn bytesmut_builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16_le(0x0302);
        m.put_u32_le(0x07060504);
        m.put_u64_le(0x0F0E0D0C0B0A0908);
        m.put_slice(&[16]);
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn zeroed_and_index() {
        let mut m = BytesMut::zeroed(4);
        m[1..3].copy_from_slice(&[9, 9]);
        assert_eq!(&m[..], &[0, 9, 9, 0]);
    }
}
